"""Data descriptors: the containers of the data-centric IR.

Per the first data-centric tenet, data containers are declared separately
from computation.  Every SDFG holds a dictionary of named descriptors; access
nodes in states refer to them by name.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence, Tuple, Union

from ..dtypes import typeclass, dtype_of
from ..symbolic import Expr, Integer, sympify

__all__ = ["StorageType", "AllocationLifetime", "Data", "Scalar", "Array", "Stream", "View"]


class StorageType(enum.Enum):
    """Where a container lives; set by device transformations."""

    Default = "Default"
    CPU_Heap = "CPU_Heap"
    CPU_Stack = "CPU_Stack"            # transient allocation mitigation (§3.1 (4))
    GPU_Global = "GPU_Global"
    GPU_Shared = "GPU_Shared"
    FPGA_Global = "FPGA_Global"        # off-chip DRAM
    FPGA_Local = "FPGA_Local"          # on-chip BRAM/registers


class AllocationLifetime(enum.Enum):
    """When a transient is allocated/deallocated."""

    Scope = "Scope"                    # per-execution
    Persistent = "Persistent"          # allocated at SDFG initialization (§3.1 (4))


class Data:
    """Base class for all data descriptors."""

    def __init__(
        self,
        dtype: typeclass,
        shape: Sequence[Union[int, Expr]],
        transient: bool = False,
        storage: StorageType = StorageType.Default,
        lifetime: AllocationLifetime = AllocationLifetime.Scope,
    ):
        self.dtype = dtype_of(dtype) if not isinstance(dtype, typeclass) else dtype
        self.shape: Tuple[Expr, ...] = tuple(sympify(s) for s in shape)
        self.transient = bool(transient)
        self.storage = storage
        self.lifetime = lifetime

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def total_size(self) -> Expr:
        total: Expr = Integer(1)
        for s in self.shape:
            total = total * s
        return total

    def size_bytes(self) -> Expr:
        return self.total_size() * self.dtype.bytes

    @property
    def free_symbols(self) -> frozenset:
        out: frozenset = frozenset()
        for s in self.shape:
            out |= s.free_symbols
        return out

    def clone(self) -> "Data":
        import copy

        return copy.deepcopy(self)

    def as_annotation_str(self) -> str:
        dims = ", ".join(str(s) for s in self.shape)
        return f"{self.dtype.name}[{dims}]"

    def __repr__(self) -> str:
        kind = type(self).__name__
        extra = ", transient" if self.transient else ""
        return f"{kind}({self.as_annotation_str()}{extra})"

    # Serialization -------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "kind": type(self).__name__,
            "dtype": self.dtype.to_json(),
            "shape": [str(s) for s in self.shape],
            "transient": self.transient,
            "storage": self.storage.value,
            "lifetime": self.lifetime.value,
        }

    @staticmethod
    def from_json(obj: dict) -> "Data":
        from ..symbolic.sets import Range

        kind = obj["kind"]
        cls = {"Scalar": Scalar, "Array": Array, "Stream": Stream, "View": View}[kind]
        shape = [Range.from_string(s).dims[0][0] for s in obj["shape"]]
        kwargs = dict(
            dtype=typeclass.from_json(obj["dtype"]),
            transient=obj["transient"],
            storage=StorageType(obj["storage"]),
            lifetime=AllocationLifetime(obj["lifetime"]),
        )
        if cls is Scalar:
            return Scalar(**kwargs)
        if cls is Stream:
            return Stream(shape=shape, buffer_size=obj.get("buffer_size", 0), **kwargs)
        return cls(shape=shape, **kwargs)


class Scalar(Data):
    """A single scalar value."""

    def __init__(self, dtype, transient: bool = False,
                 storage: StorageType = StorageType.Default,
                 lifetime: AllocationLifetime = AllocationLifetime.Scope):
        super().__init__(dtype, (1,), transient, storage, lifetime)

    @property
    def ndim(self) -> int:
        return 0

    def as_annotation_str(self) -> str:
        return self.dtype.name


class Array(Data):
    """An N-dimensional strided array (the NumPy-compatible container)."""

    def __init__(self, dtype, shape, transient: bool = False,
                 storage: StorageType = StorageType.Default,
                 lifetime: AllocationLifetime = AllocationLifetime.Scope,
                 strides: Optional[Sequence[Union[int, Expr]]] = None):
        super().__init__(dtype, shape, transient, storage, lifetime)
        if strides is None:
            strides = _contiguous_strides(self.shape)
        self.strides: Tuple[Expr, ...] = tuple(sympify(s) for s in strides)

    def to_json(self) -> dict:
        obj = super().to_json()
        obj["strides"] = [str(s) for s in self.strides]
        return obj


class View(Array):
    """A reinterpretation of another container (no copy; native to the IR).

    The paper credits "view semantics being native to the SDFG" for stencil
    improvements; views let slices flow through the graph without copies.
    """


class Stream(Data):
    """A FIFO queue container (used by FPGA streaming composition, §3.1)."""

    def __init__(self, dtype, shape=(1,), buffer_size: int = 0, transient: bool = True,
                 storage: StorageType = StorageType.Default,
                 lifetime: AllocationLifetime = AllocationLifetime.Scope):
        super().__init__(dtype, shape, transient, storage, lifetime)
        self.buffer_size = int(buffer_size)

    def to_json(self) -> dict:
        obj = super().to_json()
        obj["buffer_size"] = self.buffer_size
        return obj


def _contiguous_strides(shape: Tuple[Expr, ...]) -> Tuple[Expr, ...]:
    strides = []
    acc: Expr = Integer(1)
    for dim in reversed(shape):
        strides.append(acc)
        acc = acc * dim
    return tuple(reversed(strides))
