"""Graphviz (DOT) export of SDFGs, mirroring the paper's figures:
oval access nodes, octagon tasklets, trapezoid map entry/exit, folded
rectangles for library nodes, and blue interstate edges."""

from __future__ import annotations

from .nodes import AccessNode, LibraryNode, MapEntry, MapExit, NestedSDFG, Tasklet

__all__ = ["sdfg_to_dot"]

_SHAPES = {
    AccessNode: ("ellipse", "white"),
    Tasklet: ("octagon", "white"),
    MapEntry: ("trapezium", "lightyellow"),
    MapExit: ("invtrapezium", "lightyellow"),
    LibraryNode: ("folder", "lightgrey"),
    NestedSDFG: ("box", "lightcyan"),
}


def _node_style(node) -> str:
    for cls, (shape, fill) in _SHAPES.items():
        if isinstance(node, cls):
            return f'shape={shape}, style=filled, fillcolor="{fill}"'
    return "shape=box"


def _node_label(node) -> str:
    if isinstance(node, AccessNode):
        return node.data
    if isinstance(node, (MapEntry, MapExit)):
        return f"{node.label}[{', '.join(node.map.params)}] in [{node.map.range}]"
    return node.label or type(node).__name__


def sdfg_to_dot(sdfg) -> str:
    """Render the SDFG to DOT text (one cluster per state)."""
    lines = [f'digraph "{sdfg.name}" {{', "  compound=true;"]
    node_ids = {}
    counter = 0
    state_anchor = {}
    for si, state in enumerate(sdfg.states()):
        lines.append(f"  subgraph cluster_{si} {{")
        lines.append(f'    label="{state.label}"; color=blue; bgcolor="#eef6ff";')
        anchor = None
        for node in state.nodes():
            node_ids[node] = f"n{counter}"
            counter += 1
            label = _node_label(node).replace('"', "'")
            lines.append(f'    {node_ids[node]} [label="{label}", {_node_style(node)}];')
            if anchor is None:
                anchor = node_ids[node]
        if anchor is None:  # empty state still needs an anchor for edges
            anchor = f"n{counter}"
            counter += 1
            lines.append(f'    {anchor} [label="", shape=point];')
        state_anchor[state] = anchor
        for edge in state.edges():
            label = "" if edge.memlet.is_empty() else str(edge.memlet)[7:-1]
            label = label.replace('"', "'")
            style = ', style=dashed' if edge.memlet.wcr else ""
            lines.append(
                f'    {node_ids[edge.src]} -> {node_ids[edge.dst]} '
                f'[label="{label}"{style}];')
        lines.append("  }")
    for isedge in sdfg.edges():
        cond = isedge.data.condition or ""
        assign = "; ".join(f"{k}={v}" for k, v in isedge.data.assignments.items())
        label = "; ".join(x for x in (cond, assign) if x).replace('"', "'")
        si = sdfg.states().index(isedge.src)
        di = sdfg.states().index(isedge.dst)
        lines.append(
            f'  {state_anchor[isedge.src]} -> {state_anchor[isedge.dst]} '
            f'[label="{label}", color=blue, ltail=cluster_{si}, lhead=cluster_{di}];')
    lines.append("}")
    return "\n".join(lines)
