"""Reduce library node: full or per-axis reductions with a WCR function.

``np.sum(A)`` and friends lower to this node.  The ``native`` expansion
produces the canonical map-with-WCR subgraph; the ``library`` expansion is a
fast tasklet calling the vectorized NumPy reduction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..ir.memlet import Memlet
from ..ir.nodes import LibraryNode
from ..runtime.wcr import WCR_UFUNC
from ..symbolic import Range
from .registry import register_expansion, set_priority

__all__ = ["Reduce"]


class Reduce(LibraryNode):
    """Reduction over all or selected axes.

    Connectors: ``_in`` -> ``_out``.  ``wcr`` is one of the supported WCR
    function names; ``axes`` is None (full reduction) or a tuple of axes.
    """

    implementations: Dict[str, object] = {}
    default_priority: Dict[str, list] = {}

    def __init__(self, wcr: str = "sum", axes: Optional[Tuple[int, ...]] = None,
                 label: str = "Reduce"):
        super().__init__(label, inputs=("_in",), outputs=("_out",))
        if wcr not in WCR_UFUNC:
            raise ValueError(f"unsupported reduction {wcr!r}")
        self.wcr = wcr
        self.axes = tuple(axes) if axes is not None else None

    def compute(self, inputs, env):
        data = np.asarray(inputs["_in"])
        ufunc = WCR_UFUNC[self.wcr]
        axes = self.axes if self.axes is not None else tuple(range(data.ndim))
        result = data
        for axis in sorted(axes, reverse=True):
            result = ufunc.reduce(result, axis=axis)
        return {"_out": result}

    def flop_count(self, env) -> int:
        shape = env.get("_in_shape")
        if not shape:
            return 0
        total = 1
        for s in shape:
            total *= s
        return total

    def to_json(self) -> dict:
        obj = super().to_json()
        obj.update({"wcr": self.wcr, "axes": self.axes})
        return obj

    @classmethod
    def from_json(cls, obj: dict) -> "Reduce":
        axes = obj.get("axes")
        node = cls(wcr=obj.get("wcr", "sum"),
                   axes=tuple(axes) if axes is not None else None,
                   label=obj.get("label", "Reduce"))
        node.implementation = obj.get("implementation")
        return node


@register_expansion(Reduce, "library")
def _expand_reduce_library(node: Reduce, sdfg, state):
    ins = {e.dst_conn: e for e in state.in_edges(node) if e.dst_conn}
    outs = {e.src_conn: e for e in state.out_edges(node) if e.src_conn}
    np_name = {"sum": "add", "prod": "multiply", "min": "minimum", "max": "maximum",
               "logical_and": "logical_and", "logical_or": "logical_or"}[node.wcr]
    if node.axes is None:
        code = f"_out = np.{np_name}.reduce(np.asarray(_in), axis=None)"
    else:
        code = f"_out = np.asarray(_in)"
        for axis in sorted(node.axes, reverse=True):
            code += f"\n_out = np.{np_name}.reduce(_out, axis={axis})"
    from .blas import _scalarize_if_point

    code = _scalarize_if_point(code, outs["_out"], "_out")
    tasklet = state.add_tasklet(f"{node.label}_lib", {"_in"}, {"_out"}, code)
    state.add_edge(ins["_in"].src, ins["_in"].src_conn, tasklet, "_in", ins["_in"].memlet)
    state.add_edge(tasklet, "_out", outs["_out"].dst, outs["_out"].dst_conn,
                   outs["_out"].memlet)
    state.remove_node(node)
    return tasklet


@register_expansion(Reduce, "native")
def _expand_reduce_native(node: Reduce, sdfg, state):
    """Map over the input space with a WCR memlet to the output."""
    ins = {e.dst_conn: e for e in state.in_edges(node) if e.dst_conn}
    outs = {e.src_conn: e for e in state.out_edges(node) if e.src_conn}
    in_name = ins["_in"].memlet.data
    out_name = outs["_out"].memlet.data
    in_desc = sdfg.arrays[in_name]
    params = [f"__r{i}" for i in range(in_desc.ndim)]
    rng = Range([(0, s - 1, 1) for s in in_desc.shape])
    axes = node.axes if node.axes is not None else tuple(range(in_desc.ndim))
    out_indices = [params[i] for i in range(in_desc.ndim) if i not in axes]
    out_subset = (Range.from_string(", ".join(out_indices))
                  if out_indices else Range.from_string("0"))
    dims = {p: rng.dims[i] for i, p in enumerate(params)}
    tasklet, entry, exit_ = state.add_mapped_tasklet(
        f"{node.label}_native", dims,
        {"__v": Memlet(in_name, Range.from_string(", ".join(params)))},
        "__out = __v",
        {"__out": Memlet(out_name, out_subset, wcr=node.wcr)},
        input_nodes={in_name: ins["_in"].src if ins["_in"].src_conn is None else None},
        output_nodes={out_name: outs["_out"].dst if outs["_out"].dst_conn is None else None},
    )
    from .blas import _prepend_wcr_init

    _prepend_wcr_init(sdfg, state, out_name, entry, wcr=node.wcr)
    state.remove_node(node)
    return tasklet


set_priority(Reduce, "CPU", ["library", "native"])
set_priority(Reduce, "GPU", ["native", "library"])
set_priority(Reduce, "FPGA", ["native"])
