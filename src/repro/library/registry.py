"""Library-node expansion registry (§3.2).

An *expansion* replaces a library node with an implementation: a fast-library
tasklet, an optimized subgraph, or a native SDFG subgraph.  Expansions are
registered per node class under a name, and each platform carries a priority
list; the automatic heuristics walk the list and use the first expansion that
applies.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from ..ir.nodes import LibraryNode

__all__ = ["register_expansion", "set_priority"]


def register_expansion(node_cls: Type[LibraryNode], name: str) -> Callable:
    """Class decorator usage::

        @register_expansion(MatMul, "MKL")
        def expand_mkl(node, sdfg, state): ...
    """

    def decorator(func: Callable) -> Callable:
        if "implementations" not in vars(node_cls):
            node_cls.implementations = {}
        node_cls.implementations[name] = func
        return func

    return decorator


def set_priority(node_cls: Type[LibraryNode], platform: str, names: List[str]) -> None:
    if "default_priority" not in vars(node_cls):
        node_cls.default_priority = {}
    node_cls.default_priority[platform] = list(names)
