"""BLAS library nodes: MatMul (gemm/gemv/dot by rank) and Outer.

``A @ B`` in annotated Python becomes a :class:`MatMul` node (the paper's
*MatMul* library node).  Expansions: ``MKL``/``cuBLAS`` fast-library tasklets,
``native`` SDFG subgraph (map + WCR), ``FPGA_streamed`` (handled by the FPGA
model), and ``PBLAS`` (distributed; see repro.library.pblas).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..ir.memlet import Memlet
from ..ir.nodes import LibraryNode
from ..symbolic import Range
from .registry import register_expansion, set_priority

__all__ = ["MatMul", "Outer"]


class MatMul(LibraryNode):
    """Matrix-matrix, matrix-vector, or vector-vector product by input rank.

    Connectors: ``_a``, ``_b`` (inputs) and ``_c`` (output).
    """

    implementations: Dict[str, object] = {}
    default_priority: Dict[str, list] = {}

    def __init__(self, label: str = "MatMul"):
        super().__init__(label, inputs=("_a", "_b"), outputs=("_c",))

    def compute(self, inputs, env):
        a = np.asarray(inputs["_a"])
        b = np.asarray(inputs["_b"])
        return {"_c": a @ b}

    def flop_count(self, env) -> int:
        # 2*M*N*K for matmul; degrade gracefully by rank
        a_shape, b_shape = env.get("_a_shape"), env.get("_b_shape")
        if not a_shape or not b_shape:
            return 0
        if len(a_shape) == 2 and len(b_shape) == 2:
            return 2 * a_shape[0] * a_shape[1] * b_shape[1]
        if len(a_shape) == 2 and len(b_shape) == 1:
            return 2 * a_shape[0] * a_shape[1]
        if len(a_shape) == 1 and len(b_shape) == 2:
            return 2 * b_shape[0] * b_shape[1]
        return 2 * a_shape[0]


class Outer(LibraryNode):
    """Outer product ``np.outer`` (used by gemver/bicg-style kernels)."""

    implementations: Dict[str, object] = {}
    default_priority: Dict[str, list] = {}

    def __init__(self, label: str = "Outer"):
        super().__init__(label, inputs=("_a", "_b"), outputs=("_c",))

    def compute(self, inputs, env):
        return {"_c": np.outer(inputs["_a"], inputs["_b"])}

    def flop_count(self, env) -> int:
        a_shape, b_shape = env.get("_a_shape"), env.get("_b_shape")
        if not a_shape or not b_shape:
            return 0
        return a_shape[0] * b_shape[0]


# ---------------------------------------------------------------------------
# Expansions
# ---------------------------------------------------------------------------

def _io_edges(state, node):
    ins = {e.dst_conn: e for e in state.in_edges(node) if e.dst_conn}
    outs = {e.src_conn: e for e in state.out_edges(node) if e.src_conn}
    return ins, outs


def _scalarize_if_point(code: str, out_edge, var: str) -> str:
    """Collapse a library tasklet's result to a scalar when the output
    memlet is a single point.

    A fast-library call can produce a size-1 *array* (e.g. a per-axis
    reduction of a keepdims result) while the write target is one element;
    NumPy refuses ``dst[i] = array([x])``, so the tasklet must hand the
    backend a scalar.
    """
    subset = out_edge.memlet.subset
    if subset is not None and subset.is_point() is True:
        code += f"\n{var} = np.asarray({var}).item()"
    return code


@register_expansion(MatMul, "MKL")
def _expand_matmul_mkl(node: MatMul, sdfg, state):
    """Fast-library call: a tasklet invoking the optimized BLAS (NumPy/MKL)."""
    ins, outs = _io_edges(state, node)
    code = _scalarize_if_point("_c = np.matmul(_a, _b)", outs["_c"], "_c")
    tasklet = state.add_tasklet(f"{node.label}_mkl", {"_a", "_b"}, {"_c"}, code)
    state.add_edge(ins["_a"].src, ins["_a"].src_conn, tasklet, "_a", ins["_a"].memlet)
    state.add_edge(ins["_b"].src, ins["_b"].src_conn, tasklet, "_b", ins["_b"].memlet)
    state.add_edge(tasklet, "_c", outs["_c"].dst, outs["_c"].dst_conn, outs["_c"].memlet)
    state.remove_node(node)
    return tasklet


# cuBLAS behaves identically at the functional level; the GPU device model
# recognizes the implementation tag for cost accounting.
register_expansion(MatMul, "cuBLAS")(_expand_matmul_mkl.__wrapped__
                                     if hasattr(_expand_matmul_mkl, "__wrapped__")
                                     else _expand_matmul_mkl)


@register_expansion(MatMul, "native")
def _expand_matmul_native(node: MatMul, sdfg, state):
    """Native SDFG subgraph: triple map with WCR accumulation (Fig. 5)."""
    ins, outs = _io_edges(state, node)
    a_name = ins["_a"].memlet.data
    b_name = ins["_b"].memlet.data
    c_name = outs["_c"].memlet.data
    a_desc = sdfg.arrays[a_name]
    b_desc = sdfg.arrays[b_name]
    c_desc = sdfg.arrays[c_name]

    if a_desc.ndim == 2 and b_desc.ndim == 2:
        m, k = a_desc.shape
        _, n = b_desc.shape
        rng = Range([(0, m - 1, 1), (0, n - 1, 1), (0, k - 1, 1)])
        params = ("__i", "__j", "__k")
        in_memlets = {
            "__a": Memlet(a_name, Range.from_string("__i, __k")),
            "__b": Memlet(b_name, Range.from_string("__k, __j")),
        }
        out_memlet = Memlet(c_name, Range.from_string("__i, __j"), wcr="sum")
    elif a_desc.ndim == 2 and b_desc.ndim == 1:
        m, k = a_desc.shape
        rng = Range([(0, m - 1, 1), (0, k - 1, 1)])
        params = ("__i", "__k")
        in_memlets = {
            "__a": Memlet(a_name, Range.from_string("__i, __k")),
            "__b": Memlet(b_name, Range.from_string("__k")),
        }
        out_memlet = Memlet(c_name, Range.from_string("__i"), wcr="sum")
    elif a_desc.ndim == 1 and b_desc.ndim == 2:
        k, n = b_desc.shape
        rng = Range([(0, n - 1, 1), (0, k - 1, 1)])
        params = ("__j", "__k")
        in_memlets = {
            "__a": Memlet(a_name, Range.from_string("__k")),
            "__b": Memlet(b_name, Range.from_string("__k, __j")),
        }
        out_memlet = Memlet(c_name, Range.from_string("__j"), wcr="sum")
    else:  # dot product
        (k,) = a_desc.shape
        rng = Range([(0, k - 1, 1)])
        params = ("__k",)
        in_memlets = {
            "__a": Memlet(a_name, Range.from_string("__k")),
            "__b": Memlet(b_name, Range.from_string("__k")),
        }
        out_memlet = Memlet(c_name, Range.from_string("0") if c_desc.ndim
                            else Range.from_string("0"), wcr="sum")

    dims = {p: rng.dims[i] for i, p in enumerate(params)}
    tasklet, entry, exit_ = state.add_mapped_tasklet(
        f"{node.label}_native", dims, in_memlets, "__out = __a * __b",
        {"__out": out_memlet},
        input_nodes={a_name: ins["_a"].src if ins["_a"].src_conn is None else None,
                     b_name: ins["_b"].src if ins["_b"].src_conn is None else None},
        output_nodes={c_name: outs["_c"].dst if outs["_c"].dst_conn is None else None},
    )
    _prepend_wcr_init(sdfg, state, c_name, entry)
    state.remove_node(node)
    return tasklet


def _identity_literal(value) -> str:
    """A Python source literal for a WCR identity value (tasklet code runs
    under plain ``eval`` semantics, so bare ``inf`` would be a NameError)."""
    import math as _math

    import numpy as _np

    if isinstance(value, (bool, _np.bool_)):
        return repr(bool(value))
    if isinstance(value, (float, _np.floating)):
        v = float(value)
        if _math.isinf(v):
            return 'float("inf")' if v > 0 else 'float("-inf")'
        return repr(v)
    return repr(int(value))


def _prepend_wcr_init(sdfg, state, out_name: str, wcr_entry, identity=0,
                      wcr=None):
    """Write the WCR identity into the accumulation target before a WCR map
    (an ordering edge keeps the initialization ahead of the accumulation).

    When *wcr* is given the identity is derived from the output dtype via
    :func:`repro.runtime.wcr.wcr_identity` (integer min/max have no infinity;
    logical reductions initialize to True/False), overriding *identity*.
    """
    from ..ir.data import Scalar as _Scalar
    from ..runtime.wcr import wcr_identity

    desc = sdfg.arrays[out_name]
    init_node = state.add_access(out_name)
    if wcr is not None:
        identity = wcr_identity(wcr, desc.dtype.nptype)
    elif desc.dtype.is_float:
        identity = float(identity)
    value = _identity_literal(identity)
    if isinstance(desc, _Scalar):
        tasklet = state.add_tasklet("init_acc", set(), {"__out"},
                                    f"__out = {value}")
        state.add_edge(tasklet, "__out", init_node, None,
                       Memlet(out_name, Range.from_string("0")))
    else:
        params = {f"__z{i}": (0, s - 1, 1) for i, s in enumerate(desc.shape)}
        idx = ", ".join(f"__z{i}" for i in range(desc.ndim))
        state.add_mapped_tasklet(
            "init_acc", params, {}, f"__out = {value}",
            {"__out": Memlet(out_name, Range.from_string(idx))},
            output_nodes={out_name: init_node})
    state.add_nedge(init_node, wcr_entry, Memlet.empty())


@register_expansion(Outer, "native")
def _expand_outer_native(node: Outer, sdfg, state):
    ins, outs = _io_edges(state, node)
    a_name = ins["_a"].memlet.data
    b_name = ins["_b"].memlet.data
    c_name = outs["_c"].memlet.data
    m = sdfg.arrays[a_name].shape[0]
    n = sdfg.arrays[b_name].shape[0]
    tasklet, entry, exit_ = state.add_mapped_tasklet(
        f"{node.label}_native",
        {"__i": (0, m - 1, 1), "__j": (0, n - 1, 1)},
        {"__a": Memlet(a_name, Range.from_string("__i")),
         "__b": Memlet(b_name, Range.from_string("__j"))},
        "__out = __a * __b",
        {"__out": Memlet(c_name, Range.from_string("__i, __j"))},
        input_nodes={a_name: ins["_a"].src if ins["_a"].src_conn is None else None,
                     b_name: ins["_b"].src if ins["_b"].src_conn is None else None},
        output_nodes={c_name: outs["_c"].dst if outs["_c"].dst_conn is None else None},
    )
    state.remove_node(node)
    return tasklet


@register_expansion(Outer, "MKL")
def _expand_outer_mkl(node: Outer, sdfg, state):
    ins, outs = _io_edges(state, node)
    code = _scalarize_if_point("_c = np.outer(_a, _b)", outs["_c"], "_c")
    tasklet = state.add_tasklet(f"{node.label}_mkl", {"_a", "_b"}, {"_c"}, code)
    state.add_edge(ins["_a"].src, ins["_a"].src_conn, tasklet, "_a", ins["_a"].memlet)
    state.add_edge(ins["_b"].src, ins["_b"].src_conn, tasklet, "_b", ins["_b"].memlet)
    state.add_edge(tasklet, "_c", outs["_c"].dst, outs["_c"].dst_conn, outs["_c"].memlet)
    state.remove_node(node)
    return tasklet


set_priority(MatMul, "CPU", ["MKL", "native"])
set_priority(MatMul, "GPU", ["cuBLAS", "native"])
set_priority(MatMul, "FPGA", ["native"])
set_priority(Outer, "CPU", ["MKL", "native"])
set_priority(Outer, "GPU", ["native"])
set_priority(Outer, "FPGA", ["native"])
