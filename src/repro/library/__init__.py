"""Library nodes and their platform-specialized expansions (§3.2)."""

from .blas import MatMul, Outer
from .reduce import Reduce
from .registry import register_expansion, set_priority

__all__ = ["MatMul", "Outer", "Reduce", "register_expansion", "set_priority"]
