"""Runtime measurement harness (paper §3.4.1: ten repetitions, median,
95% nonparametric CI)."""

from __future__ import annotations

import time
from typing import Callable, Optional

from .stats import Measurement, summarize

__all__ = ["measure", "measure_callable"]


def measure_callable(fn: Callable[[], None], repetitions: int = 10,
                     warmup: int = 1, method: str = "bootstrap") -> Measurement:
    """Time ``fn()`` *repetitions* times after *warmup* unmeasured runs."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repetitions):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return summarize(samples, method=method)


def measure(fn: Callable, *args, repetitions: int = 10, warmup: int = 1,
            setup: Optional[Callable[[], tuple]] = None,
            method: str = "bootstrap", **kwargs) -> Measurement:
    """Measure ``fn(*args, **kwargs)``; ``setup`` (if given) regenerates the
    arguments before every run so in-place kernels see fresh inputs."""
    def run_once():
        if setup is not None:
            fresh_args, fresh_kwargs = setup()
            fn(*fresh_args, **fresh_kwargs)
        else:
            fn(*args, **kwargs)

    return measure_callable(run_once, repetitions=repetitions, warmup=warmup,
                            method=method)
