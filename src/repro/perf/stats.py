"""Statistics for scientific benchmarking (following the paper's
methodology [39]): median runtimes, 95% nonparametric confidence intervals,
bootstrap CIs, and geometric means."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Measurement", "median_ci", "bootstrap_ci", "geomean", "summarize"]


@dataclass
class Measurement:
    """Summary of repeated runtime samples."""

    median: float
    ci_low: float
    ci_high: float
    samples: List[float]

    @property
    def ci_percent(self) -> float:
        """CI size as a percentage of the median (the paper's superscript)."""
        if self.median == 0:
            return 0.0
        return 100.0 * (self.ci_high - self.ci_low) / self.median


def median_ci(samples: Sequence[float], confidence: float = 0.95
              ) -> Tuple[float, float, float]:
    """Median and nonparametric (order-statistic) confidence interval.

    Uses the binomial order-statistic bounds; for very small samples the
    interval degenerates to the min/max.
    """
    data = sorted(samples)
    n = len(data)
    if n == 0:
        raise ValueError("no samples")
    med = float(np.median(data))
    if n < 6:
        return med, data[0], data[-1]
    z = 1.959963984540054  # 97.5% normal quantile
    half = z * math.sqrt(n) / 2.0
    lower = max(int(math.floor(n / 2.0 - half)), 0)
    upper = min(int(math.ceil(n / 2.0 + half)), n - 1)
    return med, data[lower], data[upper]


def bootstrap_ci(samples: Sequence[float], confidence: float = 0.95,
                 resamples: int = 1000, seed: int = 0
                 ) -> Tuple[float, float, float]:
    """Median and bootstrap confidence interval [27]."""
    data = np.asarray(list(samples), dtype=np.float64)
    if data.size == 0:
        raise ValueError("no samples")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, data.size, size=(resamples, data.size))
    medians = np.median(data[idx], axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(medians, [alpha, 1.0 - alpha])
    return float(np.median(data)), float(low), float(high)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper aggregates speedups this way [1])."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))


def summarize(samples: Sequence[float], method: str = "bootstrap") -> Measurement:
    if method == "bootstrap":
        med, low, high = bootstrap_ci(samples)
    else:
        med, low, high = median_ci(samples)
    return Measurement(med, low, high, list(samples))
