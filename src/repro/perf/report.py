"""Paper-style result rendering: the rows/series of each figure and table.

Benchmarks print these so the harness output can be compared side-by-side
with the paper's artifacts (EXPERIMENTS.md records the comparison).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .stats import geomean

__all__ = ["speedup_table", "runtime_series", "scaling_table"]


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.3f} us"


def speedup_table(rows: Dict[str, Dict[str, float]], baseline: str,
                  title: str = "") -> str:
    """Fig. 7-style table: per benchmark, the baseline runtime and each
    framework's speedup over it; geometric-mean summary on top."""
    frameworks = sorted({fw for r in rows.values() for fw in r} - {baseline})
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'benchmark':<22}" + "".join(f"{fw:>12}" for fw in frameworks) \
        + f"{baseline + ' time':>16}"
    lines.append(header)
    lines.append("-" * len(header))
    speedups: Dict[str, List[float]] = {fw: [] for fw in frameworks}
    for name, row in sorted(rows.items()):
        base = row.get(baseline)
        if base is None or base <= 0:
            continue
        cells = []
        for fw in frameworks:
            value = row.get(fw)
            if value is None or value <= 0:
                cells.append(f"{'-':>12}")
                continue
            ratio = base / value
            speedups[fw].append(ratio)
            arrow = "^" if ratio >= 1.0 else "v"
            cells.append(f"{ratio:>10.2f}{arrow} ")
        lines.append(f"{name:<22}" + "".join(cells) + f"{_fmt_time(base):>16}")
    lines.append("-" * len(header))
    gm_cells = []
    for fw in frameworks:
        gm = geomean(speedups[fw])
        gm_cells.append(f"{gm:>10.2f}x ")
    lines.append(f"{'geomean speedup':<22}" + "".join(gm_cells))
    return "\n".join(lines)


def runtime_series(rows: Dict[str, Dict[str, float]], title: str = "") -> str:
    """Fig. 8/9-style: absolute runtimes per benchmark and framework."""
    frameworks = sorted({fw for r in rows.values() for fw in r})
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'benchmark':<22}" + "".join(f"{fw:>14}" for fw in frameworks)
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in sorted(rows.items()):
        cells = []
        for fw in frameworks:
            value = row.get(fw)
            cells.append(f"{_fmt_time(value):>14}" if value else f"{'-':>14}")
        lines.append(f"{name:<22}" + "".join(cells))
    return "\n".join(lines)


def scaling_table(series: Dict[str, Dict[int, float]], base_procs: int = 1,
                  title: str = "") -> str:
    """Fig. 12-style: runtime and weak-scaling efficiency per process count.

    ``series[framework][P] = runtime``.  Efficiency = T(base)/T(P).
    """
    frameworks = sorted(series)
    procs = sorted({p for s in series.values() for p in s})
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'procs':>8}" + "".join(
        f"{fw + ' time':>14}{fw + ' eff':>10}" for fw in frameworks)
    lines.append(header)
    lines.append("-" * len(header))
    for p in procs:
        cells = []
        for fw in frameworks:
            t = series[fw].get(p)
            base = series[fw].get(base_procs)
            if t is None:
                cells.append(f"{'-':>14}{'-':>10}")
                continue
            eff = (base / t * 100.0) if base and t > 0 else 0.0
            cells.append(f"{_fmt_time(t):>14}{eff:>9.1f}%")
        lines.append(f"{p:>8}" + "".join(cells))
    return "\n".join(lines)
