"""Measurement kit: timing, statistics [39, 27], and paper-style reports."""

from .report import runtime_series, scaling_table, speedup_table
from .stats import Measurement, bootstrap_ci, geomean, median_ci, summarize
from .timing import measure, measure_callable

__all__ = ["Measurement", "median_ci", "bootstrap_ci", "geomean", "summarize",
           "measure", "measure_callable", "speedup_table", "runtime_series",
           "scaling_table"]
