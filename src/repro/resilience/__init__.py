"""Cross-cutting resilience subsystem (package).

:mod:`repro.resilience.core` carries the original single-module API
(transactional transformation application, quarantine, oscillation control,
structured failure reporting) and is re-exported here unchanged, so
``from repro.resilience import transactional_apply`` keeps working.

:mod:`repro.resilience.distributed` adds coordinated checkpoint/restart for
SPMD execution (DESIGN.md §10): periodic globally-consistent
:class:`~repro.resilience.distributed.WorldCheckpoint` snapshots at SDFG
state boundaries, a supervisor that classifies rank failures and replays
from the last committed checkpoint, and epoch-tagged message envelopes so
replayed traffic cannot collide with pre-crash leftovers.

:mod:`repro.resilience.chaos` drives the seeded chaos sweep
(``python -m repro.resilience chaos``) that exercises recovery over the
distributed corpus and writes ``CHAOS.json``.
"""

from .core import (  # noqa: F401
    FailureRecord,
    FailureReport,
    OscillationDetector,
    Quarantine,
    ResilienceWarning,
    SDFGSnapshot,
    _check_static_issues,
    _static_issues,
    sdfg_fingerprint,
    transactional_apply,
    transformation_name,
)
from .distributed import (  # noqa: F401
    CheckpointManager,
    CheckpointStore,
    RankSnapshot,
    RecoveryEvent,
    SupervisedRun,
    UnrecoveredError,
    WorldCheckpoint,
    classify_failure,
    run_spmd_supervised,
)

__all__ = [
    "FailureRecord",
    "FailureReport",
    "SDFGSnapshot",
    "Quarantine",
    "OscillationDetector",
    "ResilienceWarning",
    "transactional_apply",
    "sdfg_fingerprint",
    "RankSnapshot",
    "WorldCheckpoint",
    "CheckpointStore",
    "CheckpointManager",
    "RecoveryEvent",
    "SupervisedRun",
    "UnrecoveredError",
    "classify_failure",
    "run_spmd_supervised",
]
