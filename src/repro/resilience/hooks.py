"""Thread-local state-boundary hooks for resumable SPMD execution.

Both execution engines — the generated Python module
(:mod:`repro.codegen.pygen`) and the reference interpreter
(:mod:`repro.runtime.executor`) — call :func:`state_boundary` at the top of
every state-machine iteration, before the state executes.  When no hook is
installed (the default) this is a single thread-local attribute read, so the
zero-overhead-when-off guarantee of the instrumentation layer extends to
checkpointing.

The distributed runtime installs a per-rank checkpointer through
:func:`boundary_hook` for the dynamic extent of one rank's execution; the
hook receives ``(state_index, containers, symbols)`` — exactly the SDFG
state-machine program point plus the data needed to snapshot it — and may
raise to unwind the rank (peer-failure abort, checkpoint deadlock).

Nested SDFGs run their own state machines inside a single outer state;
their boundaries are *not* checkpointable program points (the outer state is
mid-flight), so :func:`suppressed` masks the hook for the dynamic extent of
a nested execution.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = ["state_boundary", "boundary_hook", "suppressed", "active_hook"]

BoundaryHook = Callable[[int, Dict[str, Any], Dict[str, Any]], None]

_tls = threading.local()


def active_hook() -> Optional[BoundaryHook]:
    """The calling thread's installed hook, or None (also None while
    suppressed for a nested-SDFG execution)."""
    if getattr(_tls, "suppress", 0):
        return None
    return getattr(_tls, "hook", None)


def state_boundary(state_index: int, containers: Dict[str, Any],
                   symbols: Dict[str, Any]) -> None:
    """Fire the thread's boundary hook, if any (called by both backends)."""
    hook = active_hook()
    if hook is not None:
        hook(state_index, containers, symbols)


@contextlib.contextmanager
def boundary_hook(hook: BoundaryHook) -> Iterator[None]:
    """Install *hook* on the calling thread for the duration of the block."""
    prev = getattr(_tls, "hook", None)
    _tls.hook = hook
    try:
        yield
    finally:
        _tls.hook = prev


@contextlib.contextmanager
def suppressed() -> Iterator[None]:
    """Mask the thread's hook (nested-SDFG state machines)."""
    _tls.suppress = getattr(_tls, "suppress", 0) + 1
    try:
        yield
    finally:
        _tls.suppress -= 1
