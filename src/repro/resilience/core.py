"""Cross-cutting resilience subsystem.

Three concerns live here (motivated by the paper's §2.4/§3.1 workflow of
chaining dozens of automatic graph transformations, and by DaCe's practice of
validating between passes because transformation bugs are the dominant
failure mode of such compilers):

1. **Transactional transformation application** — snapshot → apply →
   validate → rollback-on-failure, so one buggy pass cannot corrupt an SDFG.
   Snapshots go through :mod:`repro.ir.serialize` (JSON round-trip) when the
   graph is serializable, and fall back to ``copy.deepcopy`` otherwise
   (e.g. unexpanded library nodes).
2. **Quarantine + oscillation control** — passes that repeatedly fail on a
   given SDFG are quarantined instead of retried forever, and fixed-point
   drivers can detect A/B oscillations through graph fingerprints.
3. **Structured failure reporting** — every rollback or degradation is
   recorded in a :class:`FailureReport` instead of crashing (or worse,
   silently continuing), so callers can inspect what went wrong and what the
   system did about it.

The graceful-degradation execution chain (optimized SDFG → unoptimized SDFG
→ pure-Python reference) is driven from :class:`repro.frontend.decorator
.DaceProgram` using these primitives, controlled by the ``resilience.*``
configuration keys.
"""

from __future__ import annotations

import copy
import json
import warnings
from typing import Any, Dict, List, Optional

from ..config import Config

__all__ = [
    "FailureRecord",
    "FailureReport",
    "SDFGSnapshot",
    "Quarantine",
    "OscillationDetector",
    "ResilienceWarning",
    "transactional_apply",
    "sdfg_fingerprint",
]


class ResilienceWarning(RuntimeWarning):
    """Emitted whenever the resilience layer absorbs a failure."""


def _json_safe(value: Any) -> Any:
    """Recursively coerce a value into JSON-serializable form.

    Exception args and detail payloads routinely carry NumPy scalars and
    arrays (e.g. a guard naming the offending value); ``json.dumps`` chokes
    on those.  Scalars collapse to their Python equivalent, small arrays to
    nested lists, and large arrays to a shape/dtype summary."""
    import numpy as np

    if isinstance(value, (int, float, bool, str, type(None))):
        return value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        if value.size <= 16:
            return value.tolist()
        return {"ndarray": {"shape": list(value.shape),
                            "dtype": str(value.dtype)}}
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return str(value)


class FailureRecord:
    """One absorbed failure: what failed, at which phase, and the response."""

    __slots__ = ("kind", "subject", "error", "action", "detail")

    def __init__(self, kind: str, subject: str, error: BaseException,
                 action: str, **detail: Any):
        self.kind = kind            # "transformation" | "optimization" | "degradation"
        self.subject = subject      # pass name or program name
        self.error = error
        self.action = action        # "rolled-back" | "quarantined" | "fell-back:<stage>"
        self.detail = detail

    def __repr__(self) -> str:
        extra = f", {self.detail}" if self.detail else ""
        return (f"FailureRecord({self.kind}:{self.subject} -> {self.action}; "
                f"{type(self.error).__name__}: {self.error}{extra})")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (errors and details are sanitized —
        NumPy scalars/arrays in exception args must not break dumps)."""
        return {
            "kind": self.kind,
            "subject": self.subject,
            "error": f"{type(self.error).__name__}: {self.error}",
            "error_args": [_json_safe(a) for a in self.error.args],
            "action": self.action,
            "detail": {k: _json_safe(v) for k, v in self.detail.items()},
        }


class FailureReport:
    """Structured collection of absorbed failures for one pipeline/program."""

    def __init__(self):
        self.records: List[FailureRecord] = []

    def record(self, kind: str, subject: str, error: BaseException,
               action: str, **detail: Any) -> FailureRecord:
        rec = FailureRecord(kind, subject, error, action, **detail)
        self.records.append(rec)
        return rec

    def by_kind(self, kind: str) -> List[FailureRecord]:
        return [r for r in self.records if r.kind == kind]

    @property
    def transformation_failures(self) -> List[FailureRecord]:
        return self.by_kind("transformation")

    @property
    def degradations(self) -> List[FailureRecord]:
        return self.by_kind("degradation")

    def clear(self) -> None:
        self.records.clear()

    def to_dict(self) -> List[Dict[str, Any]]:
        return [rec.to_dict() for rec in self.records]

    def summary(self) -> str:
        if not self.records:
            return "no failures recorded"
        lines = [f"{len(self.records)} failure(s) absorbed:"]
        for rec in self.records:
            lines.append(f"  - {rec!r}")
        return "\n".join(lines)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"FailureReport({len(self.records)} records)"


# --------------------------------------------------------------------------
# snapshots
# --------------------------------------------------------------------------

class SDFGSnapshot:
    """A restorable point-in-time copy of an SDFG.

    Capture prefers the JSON serializer (cheap, and exercises the same
    round-trip the on-disk format uses); graphs that cannot serialize —
    unexpanded library nodes — fall back to a deep copy.  ``restore``
    reinstates the captured contents *in place* on the original object, so
    callers holding a reference to the SDFG see the rollback.
    """

    __slots__ = ("_json", "_clone", "_constants")

    def __init__(self, json_text: Optional[str], clone: Optional[Any],
                 constants: Optional[Dict[str, Any]] = None):
        self._json = json_text
        self._clone = clone
        self._constants = constants

    @classmethod
    def capture(cls, sdfg) -> "SDFGSnapshot":
        try:
            # constants (e.g. module objects) are not part of the JSON
            # format; carry them alongside the serialized graph
            return cls(json.dumps(sdfg.to_json()), None, dict(sdfg.constants))
        except Exception:
            return cls(None, copy.deepcopy(sdfg))

    def restore(self, sdfg) -> None:
        if self._json is not None:
            from ..ir.serialize import sdfg_from_json

            source = sdfg_from_json(json.loads(self._json))
            source.constants = dict(self._constants or {})
        else:
            # a snapshot may be restored more than once: keep ours pristine
            source = copy.deepcopy(self._clone)
        preserved_parent = sdfg.parent
        sdfg.__dict__.clear()
        sdfg.__dict__.update(source.__dict__)
        sdfg.parent = preserved_parent
        # state back-references must point at the restored object, not at the
        # throwaway deserialized/cloned instance
        for state in sdfg.states():
            state.sdfg = sdfg


def sdfg_fingerprint(sdfg) -> Optional[str]:
    """A content hash of the graph, or None if it cannot be computed."""
    try:
        return str(hash(json.dumps(sdfg.to_json(), sort_keys=True, default=str)))
    except Exception:
        return None


class OscillationDetector:
    """Detects fixed-point loops that revisit a previous graph state.

    Feed the SDFG after every sweep; :meth:`observe` returns True when the
    current fingerprint was already seen, i.e. the last sweep's
    transformations undid each other (classic A/B oscillation).
    """

    def __init__(self):
        self._seen: Dict[str, int] = {}
        self._sweep = 0

    def observe(self, sdfg) -> bool:
        self._sweep += 1
        fp = sdfg_fingerprint(sdfg)
        if fp is None:
            return False
        if fp in self._seen:
            return True
        self._seen[fp] = self._sweep
        return False


# --------------------------------------------------------------------------
# quarantine
# --------------------------------------------------------------------------

class Quarantine:
    """Tracks per-transformation failure counts on one SDFG; passes whose
    count reaches ``resilience.quarantine_threshold`` are skipped."""

    def __init__(self, threshold: Optional[int] = None):
        self.threshold = (threshold if threshold is not None
                          else Config.get("resilience.quarantine_threshold"))
        self.failures: Dict[str, int] = {}

    def record_failure(self, name: str) -> int:
        self.failures[name] = self.failures.get(name, 0) + 1
        return self.failures[name]

    def is_quarantined(self, name: str) -> bool:
        return self.failures.get(name, 0) >= self.threshold

    @property
    def quarantined(self) -> List[str]:
        return sorted(n for n in self.failures if self.is_quarantined(n))


# --------------------------------------------------------------------------
# transactional application
# --------------------------------------------------------------------------

def transformation_name(transformation) -> str:
    name = getattr(transformation, "name", "")
    if name:
        return name
    if isinstance(transformation, type):
        return transformation.__name__
    return type(transformation).__name__


def _static_issues(sdfg) -> frozenset:
    """Provable race / out-of-bounds issue keys (sanitize.check_transforms)."""
    from ..sanitizer import static_issue_keys

    return static_issue_keys(sdfg)


def _check_static_issues(sdfg, baseline: frozenset) -> None:
    """Raise when the transformed graph has provable issues the original
    did not — semantics-preservation failed even though validation passed."""
    from ..sanitizer import SanitizerError

    fresh = _static_issues(sdfg) - baseline
    if fresh:
        raise SanitizerError(
            "static", sdfg.name,
            "transformation introduced provable issue(s): "
            + "; ".join(sorted(fresh)), issues=sorted(fresh))


def transactional_apply(sdfg, transformation, *,
                        report: Optional[FailureReport] = None,
                        quarantine: Optional[Quarantine] = None,
                        max_applications: Optional[int] = None,
                        **options) -> int:
    """Apply *transformation* repeatedly under a transaction.

    Snapshot → apply-to-fixed-point → validate → on any exception (including
    a validation failure of the transformed graph) roll the SDFG back to the
    snapshot, record the failure, and bump the quarantine counter.  Returns
    the number of applications that *survived* (0 after a rollback).
    """
    name = transformation_name(transformation)
    if quarantine is not None and quarantine.is_quarantined(name):
        return 0
    snapshot: Optional[SDFGSnapshot] = None
    try:
        # snapshotting is the expensive part of the transaction; skip it when
        # the transformation has nothing to apply (the common case in
        # fixed-point sweeps)
        if next(iter(transformation.matches(sdfg, **options)), None) is None:
            return 0
        check_static = Config.get("sanitize.check_transforms")
        baseline = _static_issues(sdfg) if check_static else frozenset()
        snapshot = SDFGSnapshot.capture(sdfg)
        applied = transformation.apply_repeated(
            sdfg, max_applications=max_applications, **options)
        if applied and not Config.get("validate.after_transform"):
            # apply_once validates per application when the config flag is
            # on; otherwise the transaction still validates the final graph
            sdfg.validate()
        if applied and check_static:
            _check_static_issues(sdfg, baseline)
        return applied
    except Exception as exc:
        if snapshot is not None:
            snapshot.restore(sdfg)
        action = "rolled-back"
        if quarantine is not None:
            count = quarantine.record_failure(name)
            if quarantine.is_quarantined(name):
                action = "quarantined"
            detail = {"failure_count": count}
        else:
            detail = {}
        if report is not None:
            report.record("transformation", name, exc, action, **detail)
        warnings.warn(
            f"transformation {name} failed ({type(exc).__name__}: {exc}); "
            f"SDFG {sdfg.name!r} {action}", ResilienceWarning, stacklevel=2)
        return 0
