"""CLI for the resilience layer: ``python -m repro.resilience chaos``."""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Resilience tooling for the data-centric toolbox.")
    sub = parser.add_subparsers(dest="command", required=True)

    chaos = sub.add_parser(
        "chaos",
        help="randomized rank-crash sweep over the distributed corpus")
    chaos.add_argument("--seeds", type=int, default=8,
                       help="crash plans per corpus program (default 8)")
    chaos.add_argument("--cases", default=None,
                       help="comma-separated subset (jacobi,pgemm,pgemv)")
    chaos.add_argument("--ckpt-interval", type=int, default=2,
                       help="checkpoint every N state transitions")
    chaos.add_argument("--ckpt-comm-ops", type=int, default=0,
                       help="also checkpoint every K comm ops (0 = off)")
    chaos.add_argument("--max-restarts", type=int, default=3)
    chaos.add_argument("--timeout", type=float, default=30.0,
                       help="per-operation deadlock timeout (seconds)")
    chaos.add_argument("--out", default="CHAOS.json")
    chaos.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.command == "chaos":
        from .chaos import chaos_sweep

        names = args.cases.split(",") if args.cases else None
        report = chaos_sweep(
            seeds=args.seeds, ckpt_interval=args.ckpt_interval,
            ckpt_comm_ops=args.ckpt_comm_ops,
            max_restarts=args.max_restarts, timeout_s=args.timeout,
            out=args.out, case_names=names, verbose=not args.quiet)
        summary = report["summary"]
        return 1 if (summary["unrecovered"] or summary["diverged"]) else 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
