"""Chaos sweep: randomized rank-crash plans over the distributed corpus.

``python -m repro.resilience chaos`` runs each corpus program (the paper's
explicit jacobi_2d, the transformed pgemm pipeline, and the pgemv-based
atax) once fault-free, then under seeded single-crash
:class:`~repro.simmpi.netmodel.FaultPlan`\\ s with checkpointing enabled.
Every trial must (a) recover — the supervisor replays from the last
consistent checkpoint and the run completes — and (b) produce outputs
tolerance-equal to the fault-free run: replay from a consistent cut is
deterministic, so divergence indicates a broken snapshot/restore path.

Results are written to ``CHAOS.json`` (schema ``repro-chaos/1``); the
sweep exits non-zero if any recoverable plan goes unrecovered or any
recovered run diverges.
"""

# NOTE: no `from __future__ import annotations` here — it would stringify
# the @repro.program parameter annotations before the frontend reads them.

import json
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

import repro
import repro.comm
from ..simmpi.netmodel import FaultPlan

__all__ = ["ChaosCase", "CASES", "chaos_sweep", "SCHEMA"]

SCHEMA = "repro-chaos/1"

# tolerance for faulted-vs-fault-free comparison: replay is deterministic,
# so anything beyond accumulated float noise is a real divergence
RTOL, ATOL = 1e-10, 1e-12

# -- corpus programs ---------------------------------------------------------

_N = repro.symbol("N")
_lNx = repro.symbol("lNx")
_lNy = repro.symbol("lNy")
_noff = repro.symbol("noff")
_soff = repro.symbol("soff")
_woff = repro.symbol("woff")
_eoff = repro.symbol("eoff")
_NI = repro.symbol("NI")
_NJ = repro.symbol("NJ")
_NK = repro.symbol("NK")
_M = repro.symbol("M")
_Nv = repro.symbol("Nv")


@repro.program
def _j2d_chaos(TSTEPS: repro.int32, A: repro.float64[_N, _N],
               B: repro.float64[_N, _N]):
    lA = np.zeros((_lNx + 2, _lNy + 2))
    lB = np.zeros((_lNx + 2, _lNy + 2))
    lA[1:-1, 1:-1] = repro.comm.BlockScatter(A, (_lNx, _lNy))
    lB[1:-1, 1:-1] = repro.comm.BlockScatter(B, (_lNx, _lNy))
    for t in range(1, TSTEPS):
        repro.comm.HaloExchange(lA)
        lB[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff] = 0.2 * (
            lA[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lA[1 + _noff:_lNx + 1 - _soff, _woff:_lNy - _eoff]
            + lA[1 + _noff:_lNx + 1 - _soff, 2 + _woff:_lNy + 2 - _eoff]
            + lA[2 + _noff:_lNx + 2 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lA[_noff:_lNx - _soff, 1 + _woff:_lNy + 1 - _eoff])
        repro.comm.HaloExchange(lB)
        lA[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff] = 0.2 * (
            lB[1 + _noff:_lNx + 1 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lB[1 + _noff:_lNx + 1 - _soff, _woff:_lNy - _eoff]
            + lB[1 + _noff:_lNx + 1 - _soff, 2 + _woff:_lNy + 2 - _eoff]
            + lB[2 + _noff:_lNx + 2 - _soff, 1 + _woff:_lNy + 1 - _eoff]
            + lB[_noff:_lNx - _soff, 1 + _woff:_lNy + 1 - _eoff])
    A[:] = repro.comm.BlockGather(lA[1:-1, 1:-1], (_N, _N))
    B[:] = repro.comm.BlockGather(lB[1:-1, 1:-1], (_N, _N))


@repro.program
def _gemm_chaos(alpha: repro.float64, beta: repro.float64,
                C: repro.float64[_NI, _NJ], A: repro.float64[_NI, _NK],
                B: repro.float64[_NK, _NJ]):
    C[:] = alpha * A @ B + beta * C


@repro.program
def _atax_chaos(A: repro.float64[_M, _Nv], x: repro.float64[_Nv],
                y: repro.float64[_Nv]):
    y[:] = (A @ x) @ A


def _jacobi_offsets(rank, grid):
    nb = grid.neighbors(rank)
    return {"noff": 1 if nb["north"] < 0 else 0,
            "soff": 1 if nb["south"] < 0 else 0,
            "woff": 1 if nb["west"] < 0 else 0,
            "eoff": 1 if nb["east"] < 0 else 0}


def _run_jacobi(fault_plan: Optional[FaultPlan], ckpt: Dict):
    from ..distributed import run_distributed

    n, tsteps = 12, 5
    rng = np.random.default_rng(0)
    A, B = rng.random((n, n)), rng.random((n, n))
    result = run_distributed(
        _j2d_chaos, 4, TSTEPS=tsteps, A=A, B=B, lNx=n // 2, lNy=n // 2,
        rank_args=_jacobi_offsets, fault_plan=fault_plan, **ckpt)
    return {"A": A, "B": B}, result


def _pgemm_sdfg():
    from ..transformations.distributed import (DistributeElementWiseArrayOp,
                                               RemoveRedundantComm)

    sdfg = _gemm_chaos.to_sdfg().clone()
    sdfg.apply(DistributeElementWiseArrayOp)
    sdfg.expand_library_nodes(implementation="PBLAS")
    sdfg.apply(RemoveRedundantComm)
    return sdfg


def _run_pgemm(fault_plan: Optional[FaultPlan], ckpt: Dict):
    from ..distributed import run_distributed

    rng = np.random.default_rng(5)
    M, K, N = 12, 8, 16
    A, B, C = rng.random((M, K)), rng.random((K, N)), rng.random((M, N))
    result = run_distributed(_pgemm_sdfg(), 4, alpha=1.5, beta=0.5,
                             C=C, A=A, B=B, fault_plan=fault_plan, **ckpt)
    return {"C": C}, result


def _pgemv_sdfg():
    from ..transformations.distributed import DeduplicateComm

    sdfg = _atax_chaos.to_sdfg().clone()
    sdfg.expand_library_nodes(implementation="PBLAS")
    sdfg.apply(DeduplicateComm)
    return sdfg


def _run_pgemv(fault_plan: Optional[FaultPlan], ckpt: Dict):
    from ..distributed import run_distributed

    rng = np.random.default_rng(7)
    A, x, y = rng.random((12, 8)), rng.random(8), np.zeros(8)
    result = run_distributed(_pgemv_sdfg(), 4, A=A, x=x, y=y,
                             fault_plan=fault_plan, **ckpt)
    return {"y": y}, result


@dataclass
class ChaosCase:
    """One corpus entry: runs on fresh inputs, returns output arrays +
    the :class:`~repro.distributed.runner.DistributedResult`."""

    name: str
    size: int
    run: Callable[[Optional[FaultPlan], Dict], Tuple[Dict, object]]


CASES: List[ChaosCase] = [
    ChaosCase("jacobi", 4, _run_jacobi),
    ChaosCase("pgemm", 4, _run_pgemm),
    ChaosCase("pgemv", 4, _run_pgemv),
]


# -- the sweep ---------------------------------------------------------------


def _crash_plan(seed: int, size: int, op_counts: List[int]) -> FaultPlan:
    """A seeded single-crash plan guaranteed to fire: the crash site is
    drawn within the rank's fault-free communication-op count."""
    rng = random.Random(seed)
    rank = rng.randrange(size)
    after_ops = rng.randint(1, max(1, op_counts[rank] - 1))
    return FaultPlan(seed=seed, crashes=[(rank, after_ops)])


def chaos_sweep(seeds: int = 8, ckpt_interval: int = 2,
                ckpt_comm_ops: int = 0, max_restarts: int = 3,
                timeout_s: float = 30.0, out: str = "CHAOS.json",
                case_names: Optional[List[str]] = None,
                verbose: bool = True) -> Dict:
    """Run the corpus under seeded crash plans; write *out*; return report."""
    from ..simmpi.comm import SimMPIError

    cases = [c for c in CASES
             if case_names is None or c.name in case_names]
    ckpt = {"ckpt_interval": ckpt_interval, "ckpt_comm_ops": ckpt_comm_ops,
            "max_restarts": max_restarts, "timeout_s": timeout_s}
    report_cases = []
    totals = {"trials": 0, "recovered": 0, "unrecovered": 0, "diverged": 0,
              "vacuous": 0}
    for case in cases:
        baseline_out, baseline = case.run(None, {"timeout_s": timeout_s})
        trials = []
        for seed in range(seeds):
            plan = _crash_plan(seed, case.size, baseline.op_counts)
            (crash_rank, crash_after), = plan.crash_sites
            trial = {"seed": seed, "crash_rank": crash_rank,
                     "crash_after_ops": crash_after, "crashes_fired": 0,
                     "recovered": False, "restarts": 0, "checkpoints": 0,
                     "max_abs_err": None, "within_tolerance": False,
                     "error": None}
            totals["trials"] += 1
            try:
                outs, result = case.run(plan, ckpt)
            except SimMPIError as exc:
                trial["error"] = f"{type(exc).__name__}: {exc}"
                totals["unrecovered"] += 1
            else:
                trial["recovered"] = True
                trial["restarts"] = len([e for e in result.recovery_events
                                         if e.kind.startswith("restart")])
                trial["failed_ranks"] = result.failed_ranks
                err = max(float(np.abs(outs[k] - baseline_out[k]).max())
                          for k in baseline_out)
                trial["max_abs_err"] = err
                trial["within_tolerance"] = all(
                    np.allclose(outs[k], baseline_out[k],
                                rtol=RTOL, atol=ATOL)
                    for k in baseline_out)
                if trial["within_tolerance"]:
                    totals["recovered"] += 1
                else:
                    totals["diverged"] += 1
            trial["crashes_fired"] = plan.injected["crashes"]
            if trial["crashes_fired"] == 0:
                # the plan never fired: the trial proves nothing
                totals["vacuous"] += 1
            if verbose:
                status = ("ok" if trial["recovered"]
                          and trial["within_tolerance"] else "FAIL")
                print(f"  {case.name} seed={seed} crash=(rank {crash_rank}, "
                      f"op {crash_after}) fired={trial['crashes_fired']} "
                      f"restarts={trial['restarts']} "
                      f"err={trial['max_abs_err']} -> {status}")
            trials.append(trial)
        report_cases.append({
            "name": case.name, "size": case.size,
            "baseline_op_counts": list(baseline.op_counts),
            "trials": trials,
        })
    report = {
        "schema": SCHEMA,
        "seeds": seeds,
        "ckpt_interval": ckpt_interval,
        "ckpt_comm_ops": ckpt_comm_ops,
        "max_restarts": max_restarts,
        "cases": report_cases,
        "summary": totals,
    }
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
    if verbose:
        print(f"chaos: {totals['trials']} trials, "
              f"{totals['recovered']} recovered, "
              f"{totals['unrecovered']} unrecovered, "
              f"{totals['diverged']} diverged, "
              f"{totals['vacuous']} vacuous -> {out}")
    return report
