"""Coordinated checkpoint/restart for the simulated distributed runtime.

DESIGN.md §10.  SPMD ranks execute the same SDFG state machine, so a state
boundary — "about to execute state *k*" — is the one program point every
rank visits in the same order.  The checkpointer exploits this: at
configurable intervals (every N state transitions via
``resilience.ckpt_interval``, or once any rank has issued K communication
operations since the last checkpoint via ``resilience.ckpt_comm_ops``) all
ranks rendezvous at a checkpoint barrier and deposit a snapshot of their
local containers, symbol bindings, and the world's per-channel sequence
state plus in-flight mailbox messages.  Because every rank is parked at the
same boundary when the snapshot is assembled, the cut is globally
consistent: no message is recorded as received but not sent.

A supervisor (:func:`run_spmd_supervised`) wraps the raw SPMD launch.  When
a rank dies it classifies the failure — :class:`InjectedCrash` and other
simulated-MPI faults are *recoverable* (transient), deadlocks and user
exceptions are *fatal* — rolls every rank back to the last committed
checkpoint (coordinated rollback: respawning only the dead rank would
require message logging; respawning all ranks from a consistent cut needs
none), bumps the world *epoch* so stale in-flight messages from the
abandoned epoch are drained at the receiver, and replays.  The restart
budget is bounded (``resilience.max_restarts``).  With no checkpoint yet
committed, the supervisor restarts from the initial inputs (the caller
provides a ``reset`` callback to undo in-place mutation).

Checkpoints live in memory and are optionally spilled to disk
(``resilience.ckpt_dir`` or ``$REPRO_CKPT_DIR``) with atomic-rename
discipline so a partially-written file is never observed.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..config import Config
from ..governor.budget import Budget, GovernorError
from ..governor.budget import armed as _governor_armed
from ..simmpi.comm import (Comm, DeadlockError, SimMPIError, _AbortedByPeer,
                           _launch, _raise_failures, _World, primary_failures)
from ..simmpi.netmodel import FaultPlan, NetModel
from . import hooks

__all__ = [
    "RankSnapshot", "WorldCheckpoint", "CheckpointStore", "CheckpointManager",
    "RecoveryEvent", "SupervisedRun", "UnrecoveredError", "CheckpointCorrupt",
    "classify_failure", "run_spmd_supervised",
]

#: on-disk checkpoint format: magic + sha256(payload) + pickle payload
_CKPT_MAGIC = b"RPCKPT01"


class CheckpointCorrupt(RuntimeError):
    """A spilled checkpoint failed its integrity check (truncated file, bad
    magic, or checksum mismatch)."""


class UnrecoveredError(SimMPIError):
    """The supervisor gave up: a fatal failure, or the restart budget ran
    out.  Carries the recovery timeline for post-mortem reporting."""

    def __init__(self, message: str,
                 events: Optional[List["RecoveryEvent"]] = None):
        super().__init__(message)
        self.recovery_events: List[RecoveryEvent] = list(events or [])


# ---------------------------------------------------------------------------
# snapshots


def _copy_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return np.copy(value)
    return copy.deepcopy(value)


@dataclass
class RankSnapshot:
    """One rank's local state at a state-machine boundary."""

    rank: int
    state_index: int                 # about to execute this state
    containers: Dict[str, Any]       # deep copies (globals + transients)
    symbols: Dict[str, Any]          # scalar bindings incl. loop variables

    @classmethod
    def capture(cls, rank: int, state_index: int, containers: Dict[str, Any],
                symbols: Dict[str, Any]) -> "RankSnapshot":
        return cls(rank=rank, state_index=state_index,
                   containers={k: _copy_value(v)
                               for k, v in containers.items()},
                   symbols={k: _copy_value(v) for k, v in symbols.items()})

    def restore_into(self, containers: Dict[str, Any]) -> Dict[str, Any]:
        """Restore into existing containers *in place* where possible.

        Rank 0 operates on the caller's arrays (in-place calling
        convention), so restoration must write *through* the existing
        buffers with ``np.copyto`` rather than rebind them.  The snapshot
        itself is never aliased — it may be restored again on a later
        restart."""
        for name, value in self.containers.items():
            existing = containers.get(name)
            if (isinstance(existing, np.ndarray)
                    and isinstance(value, np.ndarray)
                    and existing.shape == value.shape):
                np.copyto(existing, value)
            else:
                containers[name] = _copy_value(value)
        return containers


@dataclass
class WorldCheckpoint:
    """A globally-consistent cut: every rank's snapshot at the same state
    boundary plus the world's communication state (virtual clocks, op
    counts, per-channel sequence numbers, delivered-sets, and in-flight
    mailbox messages)."""

    boundary: int                    # state index all ranks were parked at
    epoch: int                       # epoch the checkpoint was taken in
    ranks: List[RankSnapshot]
    comm: Dict[str, Any]             # from _World.snapshot_comm()

    def save(self, directory: str) -> str:
        """Spill to disk atomically and checksummed: magic + sha256 digest
        + pickle payload, written to a temp file then renamed — readers
        never observe a torn checkpoint, and a bit-rotted one is *detected*
        at load instead of restoring silently-corrupt rank state."""
        os.makedirs(directory, exist_ok=True)
        name = f"ckpt-epoch{self.epoch:04d}-state{self.boundary:04d}.pkl"
        path = os.path.join(directory, name)
        tmp = path + f".tmp.{os.getpid()}.{threading.get_ident()}"
        payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        with open(tmp, "wb") as fh:
            fh.write(_CKPT_MAGIC)
            fh.write(hashlib.sha256(payload).digest())
            fh.write(payload)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str) -> "WorldCheckpoint":
        """Load and verify a spilled checkpoint; raises
        :class:`CheckpointCorrupt` on any integrity violation."""
        with open(path, "rb") as fh:
            blob = fh.read()
        header = len(_CKPT_MAGIC) + 32
        if len(blob) < header:
            raise CheckpointCorrupt(f"{path}: truncated checkpoint "
                                    f"({len(blob)} bytes)")
        if blob[:len(_CKPT_MAGIC)] != _CKPT_MAGIC:
            raise CheckpointCorrupt(f"{path}: bad magic "
                                    f"{blob[:len(_CKPT_MAGIC)]!r}")
        digest = blob[len(_CKPT_MAGIC):header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointCorrupt(f"{path}: checksum mismatch")
        ckpt = pickle.loads(payload)
        if not isinstance(ckpt, cls):
            raise CheckpointCorrupt(f"{path} does not hold a WorldCheckpoint")
        return ckpt


class CheckpointStore:
    """Holds the latest committed checkpoint across epochs; optionally
    mirrors every commit to disk."""

    def __init__(self, spill_dir: Optional[str] = None):
        if spill_dir is None:
            spill_dir = (Config.get("resilience.ckpt_dir")
                         or os.environ.get("REPRO_CKPT_DIR") or "")
        self.spill_dir = spill_dir
        self.latest: Optional[WorldCheckpoint] = None
        self.commits = 0
        self.paths: List[str] = []

    def commit(self, ckpt: WorldCheckpoint) -> None:
        self.latest = ckpt
        self.commits += 1
        if self.spill_dir:
            self.paths.append(ckpt.save(self.spill_dir))

    def load_latest_from_disk(self) -> Optional[WorldCheckpoint]:
        """Newest valid spilled checkpoint, falling back past corrupt ones.

        Mirrors the compile cache's detect-and-evict discipline
        (:mod:`repro.cache.store`): a checkpoint that fails its integrity
        check is deleted and the *previous* committed one is tried, so one
        bit-rotted file costs some replay distance, never correctness.
        When no paths were recorded (a fresh store pointed at an existing
        spill dir), the directory is scanned instead."""
        candidates = list(self.paths)
        if not candidates and self.spill_dir and os.path.isdir(self.spill_dir):
            candidates = sorted(
                os.path.join(self.spill_dir, name)
                for name in os.listdir(self.spill_dir)
                if name.startswith("ckpt-") and name.endswith(".pkl"))
        for path in reversed(candidates):
            try:
                return WorldCheckpoint.load(path)
            except (CheckpointCorrupt, OSError):
                if path in self.paths:
                    self.paths.remove(path)
                try:
                    os.remove(path)
                except OSError:
                    pass
        return None


# ---------------------------------------------------------------------------
# the checkpoint rendezvous


class CheckpointManager:
    """Coordinates checkpoint rounds for one epoch's world.

    Every rank enters a *round* at every state boundary (the hook installed
    through :mod:`repro.resilience.hooks`): it deposits a
    ``(boundary, wants_checkpoint)`` decision, rendezvouses, and all ranks
    deterministically agree on whether to commit — only if every rank sits
    at the *same* boundary (comm-op-triggered rounds where ranks diverge
    are discarded; interval-triggered rounds always align) and at least one
    rank wants a checkpoint.  On commit each rank deposits a
    :class:`RankSnapshot`, rank 0 assembles the :class:`WorldCheckpoint`
    (including the quiescent communication state) and commits it to the
    store, and a final rendezvous releases the ranks.

    The internal barrier is registered with the world so a rank death
    aborts it — survivors parked at a checkpoint rendezvous unwind
    immediately instead of waiting out the deadlock timeout.
    """

    def __init__(self, world: _World, store: CheckpointStore,
                 interval: int, comm_interval: int):
        self.world = world
        self.store = store
        self.interval = int(interval)
        self.comm_interval = int(comm_interval)
        self.barrier = threading.Barrier(world.size)
        world.register_barrier(self.barrier)
        self._decisions: List[Optional[tuple]] = [None] * world.size
        self._snaps: List[Optional[RankSnapshot]] = [None] * world.size
        # comm-op baseline: restored worlds resume mid-count
        self._last_ops = list(world.op_counts)

    def _wait(self, rank: int, desc: str) -> None:
        world = self.world
        world.pending[rank] = desc
        try:
            self.barrier.wait(timeout=world.timeout_s)
        except threading.BrokenBarrierError:
            first = world.failed
            if first is not None:
                raise _AbortedByPeer(
                    f"rank {rank} aborted at {desc}: peer failure "
                    f"({first})") from first
            raise DeadlockError(world.deadlock_dump(rank, desc)) from None
        finally:
            world.pending[rank] = None

    def hook(self, comm: Comm) -> hooks.BoundaryHook:
        """The per-rank boundary hook driving checkpoint rounds."""
        rank = comm.rank
        transitions = [0]

        def _boundary(state_index: int, containers: Dict[str, Any],
                      symbols: Dict[str, Any]) -> None:
            transitions[0] += 1
            want = (self.interval > 0
                    and transitions[0] % self.interval == 0)
            if not want and self.comm_interval > 0:
                done = self.world.op_counts[rank] - self._last_ops[rank]
                want = done >= self.comm_interval
            self._decisions[rank] = (state_index, want)
            self._wait(rank, "checkpoint:decide")
            decisions = list(self._decisions)
            aligned = all(d is not None and d[0] == state_index
                          for d in decisions)
            commit = aligned and any(w for _, w in decisions)
            if not commit:
                # second rendezvous so no rank overwrites its decision slot
                # before everyone has read this round's
                self._wait(rank, "checkpoint:skip")
                return
            # nonblocking comm (commopt halo overlap) must not straddle the
            # recovery line: complete anything still in flight on this rank
            from ..distributed.commopt.runtime import drain_pending

            drain_pending()
            self._snaps[rank] = RankSnapshot.capture(
                rank, state_index, containers, symbols)
            self._last_ops[rank] = self.world.op_counts[rank]
            self._wait(rank, "checkpoint:deposit")
            if rank == 0:
                # every rank is parked between the deposit and commit
                # rendezvous: mailboxes and clocks are quiescent
                ckpt = WorldCheckpoint(
                    boundary=state_index, epoch=self.world.epoch,
                    ranks=list(self._snaps),
                    comm=self.world.snapshot_comm())
                self.store.commit(ckpt)
            self._wait(rank, "checkpoint:commit")

        return _boundary


# ---------------------------------------------------------------------------
# supervision


@dataclass
class RecoveryEvent:
    """One supervisor action: a restart (from a checkpoint or from scratch)
    or a terminal give-up."""

    epoch: int                       # the epoch being abandoned
    failed_ranks: List[int]
    kind: str                        # "restart" | "restart-scratch" |
                                     # "fatal" | "budget-exhausted"
    boundary: Optional[int]          # checkpoint boundary restored to
    error: str
    elapsed_s: float = 0.0           # wall time of the failed epoch


@dataclass
class SupervisedRun:
    """Outcome of a supervised SPMD execution."""

    results: List[Any]
    clocks: List[float]
    comm_stats: Dict[str, int]
    recovery_events: List[RecoveryEvent] = field(default_factory=list)
    failed_ranks: List[int] = field(default_factory=list)
    op_counts: List[int] = field(default_factory=list)
    epochs: int = 1                  # 1 = fault-free single epoch
    checkpoints: int = 0             # committed over the whole run
    op_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    commopt_stats: Dict[str, float] = field(default_factory=dict)


def classify_failure(exc: BaseException) -> bool:
    """True if *exc* is recoverable: a simulated-MPI fault (injected crash,
    retransmission exhaustion, peer abort) anywhere on its cause chain.

    Tasklet errors are wrapped by the interpreter/generated module, so the
    walk follows ``__cause__``/``__context__``.  Deadlocks are *fatal*: a
    communication mismatch replays identically from a checkpoint."""
    seen = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, DeadlockError):
            pass
        elif isinstance(node, SimMPIError):
            return True
        node = node.__cause__ or node.__context__
    return False


def _governor_failure(exc: BaseException) -> Optional[GovernorError]:
    """The GovernorError on *exc*'s cause chain, if any (rank failures are
    wrapped in SimMPIError by the launcher)."""
    seen = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(node, GovernorError):
            return node
        node = node.__cause__ or node.__context__
    return None


def run_spmd_supervised(rank_fn: Callable[[Comm, Optional[RankSnapshot]], Any],
                        size: int,
                        net: Optional[NetModel] = None,
                        fault_plan: Optional[FaultPlan] = None,
                        timeout_s: Optional[float] = None,
                        ckpt_interval: Optional[int] = None,
                        ckpt_comm_ops: Optional[int] = None,
                        max_restarts: Optional[int] = None,
                        reset: Optional[Callable[[], None]] = None,
                        spill_dir: Optional[str] = None,
                        budget: Optional[Budget] = None) -> SupervisedRun:
    """Run ``rank_fn(comm, snapshot)`` on *size* ranks under supervision.

    ``snapshot`` is None on a fresh start and the rank's
    :class:`RankSnapshot` when resuming from a checkpoint.  Recoverable
    rank failures trigger a coordinated rollback-and-replay (all ranks
    respawn from the last consistent checkpoint, or from scratch after
    *reset* is called); fatal failures and budget exhaustion raise
    :class:`UnrecoveredError` (deadlocks re-raise directly with their
    diagnostic dump).  Parameters default to the ``resilience.*``
    configuration keys.

    A governor *budget* arms every rank thread with its
    :meth:`~repro.governor.Budget.per_rank` slice against ONE absolute
    deadline fixed before the first epoch — restarts replay work but never
    reset the clock, so a supervised run cannot restart-loop past its
    deadline.  Governor errors are fatal (a timeout replays identically)
    and re-raise directly rather than wrapped in
    :class:`UnrecoveredError`.
    """
    from .. import instrumentation

    net = net or NetModel.from_config()
    interval = (Config.get("resilience.ckpt_interval")
                if ckpt_interval is None else ckpt_interval)
    comm_ops = (Config.get("resilience.ckpt_comm_ops")
                if ckpt_comm_ops is None else ckpt_comm_ops)
    budget_restarts = (Config.get("resilience.max_restarts")
                       if max_restarts is None else max_restarts)
    rank_budget: Optional[Budget] = None
    deadline_at: Optional[float] = None
    if budget is not None and not budget.is_null:
        rank_budget = budget.per_rank(size)
        if budget.deadline_s is not None:
            deadline_at = time.monotonic() + budget.deadline_s
    store = CheckpointStore(spill_dir)
    events: List[RecoveryEvent] = []
    ever_failed: set = set()
    epoch = 0
    restarts = 0
    while True:
        wall = time.perf_counter()
        world = _World(size, net, fault_plan=fault_plan, timeout_s=timeout_s,
                       epoch=epoch)
        ckpt = store.latest
        if ckpt is not None:
            world.restore_comm(ckpt.comm)
        manager = (CheckpointManager(world, store, interval, comm_ops)
                   if (interval > 0 or comm_ops > 0) else None)

        def fn(comm: Comm, _ckpt=ckpt, _manager=manager) -> Any:
            snap = _ckpt.ranks[comm.rank] if _ckpt is not None else None
            with _governor_armed(rank_budget, program=f"rank{comm.rank}",
                                 deadline_at=deadline_at):
                if _manager is not None:
                    with hooks.boundary_hook(_manager.hook(comm)):
                        return rank_fn(comm, snap)
                return rank_fn(comm, snap)

        results = _launch(fn, world)
        elapsed = time.perf_counter() - wall
        if not world.failures:
            return SupervisedRun(
                results=results, clocks=world.clocks,
                comm_stats=world.comm_stats, recovery_events=events,
                failed_ranks=sorted(ever_failed),
                op_counts=list(world.op_counts),
                epochs=epoch + 1, checkpoints=store.commits,
                op_stats={op: dict(st)
                          for op, st in world.op_stats.items()},
                commopt_stats=dict(world.commopt_stats))

        primaries = primary_failures(world)
        ever_failed.update(primaries)
        first = next(iter(primaries.values()))
        recoverable = all(classify_failure(e) for e in primaries.values())
        boundary = store.latest.boundary if store.latest is not None else None
        coll = instrumentation._ACTIVE

        if not recoverable or restarts >= budget_restarts:
            kind = "fatal" if not recoverable else "budget-exhausted"
            events.append(RecoveryEvent(
                epoch=epoch, failed_ranks=list(primaries), kind=kind,
                boundary=boundary, error=f"{type(first).__name__}: {first}",
                elapsed_s=elapsed))
            if coll is not None:
                coll.add("recovery", f"{kind}:epoch{epoch}", elapsed)
            for exc in primaries.values():
                gov = _governor_failure(exc)
                if gov is not None:
                    # structured governor rejections surface as themselves
                    # (callers match on ExecutionTimeout etc.), keeping the
                    # recovery timeline attached
                    gov.recovery_events = events  # type: ignore[attr-defined]
                    raise gov
            try:
                _raise_failures(world)
            except DeadlockError:
                raise
            except SimMPIError as exc:
                raise UnrecoveredError(
                    f"unrecovered after {restarts} restart(s) "
                    f"({kind}): {exc}", events) from exc

        restarts += 1
        kind = "restart" if store.latest is not None else "restart-scratch"
        events.append(RecoveryEvent(
            epoch=epoch, failed_ranks=list(primaries), kind=kind,
            boundary=boundary, error=f"{type(first).__name__}: {first}",
            elapsed_s=elapsed))
        if coll is not None:
            coll.add("recovery", f"{kind}:epoch{epoch}", elapsed)
        if store.latest is None and reset is not None:
            reset()
        epoch += 1
