"""Instrumentation & profiling subsystem (the measurement substrate).

The paper's evaluation is an instrumentation story: Fig. 6 reports
compile-time distributions and Fig. 7 reports CPU runtimes and geomean
speedups over NumPy.  DaCe itself ships per-scope timers and counters
(Ben-Nun et al., SC'19 §"Instrumentation"); this module is the analogous
layer for the reproduction:

* **Region timers** attach to SDFG states, map scopes and library nodes in
  both the reference interpreter (:mod:`repro.runtime.executor`) and the
  generated Python backend (:mod:`repro.codegen.pygen`).
* **Pass timers** decompose total compilation time per transformation pass
  (:mod:`repro.transformations.pipeline`, :mod:`repro.autoopt`) — the
  Fig. 6 analogue.
* **Attempt records** from the resilience degradation chain state which
  fallback tier ran and how long each attempt took.

Zero overhead when off: the hot paths test a single module-level global
(``_ACTIVE is None``) and the code generator only emits timing hooks when a
module is compiled with ``instrument=True``.  Activation is either explicit
(:func:`profile` context manager), per-program
(``@repro.program(instrument="timers")``), or global (configuration key
``instrument.mode``).

Everything measured lands in a :class:`ProfileReport` dataclass that
serializes to/from JSON; ``repro.bench.profile`` builds the ``BENCH_cpu.json``
perf-trajectory artifact on top of it.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "RegionStat",
    "AttemptRecord",
    "ProfileReport",
    "ProfileCollector",
    "profile",
    "current",
    "enabled",
    "record_region",
]

#: known region categories (free-form strings are accepted; these are the
#: ones the built-in hooks emit)
CATEGORIES = ("state", "map", "library", "pass", "phase", "cache", "attempt",
              "recovery", "parallel", "governor", "comm")

#: the active collector; ``None`` means instrumentation is off (the single
#: check every hot path performs)
_ACTIVE: Optional["ProfileCollector"] = None


# ---------------------------------------------------------------------------
# report dataclasses
# ---------------------------------------------------------------------------

@dataclass
class RegionStat:
    """Aggregated timings of one named region (state, map scope, pass...)."""

    category: str
    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        if self.count == 0:
            d["min_s"] = 0.0
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RegionStat":
        return cls(**d)


@dataclass
class AttemptRecord:
    """One execution attempt in the graceful-degradation chain."""

    stage: str                 # "compiled" | "interpreter" | "python"
    ok: bool
    seconds: float
    error: str = ""            # "TypeName: message" when ok is False

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "AttemptRecord":
        return cls(**d)


@dataclass
class ProfileReport:
    """Structured result of one instrumented run, serializable to JSON."""

    program: str = ""
    mode: str = "timers"
    regions: List[RegionStat] = field(default_factory=list)
    attempts: List[AttemptRecord] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- queries
    def by_category(self, category: str) -> List[RegionStat]:
        return [r for r in self.regions if r.category == category]

    def total(self, category: str) -> float:
        return sum(r.total_s for r in self.by_category(category))

    def get(self, category: str, name: str) -> Optional[RegionStat]:
        for r in self.regions:
            if r.category == category and r.name == name:
                return r
        return None

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro-profile/1",
            "program": self.program,
            "mode": self.mode,
            "regions": [r.to_dict() for r in self.regions],
            "attempts": [a.to_dict() for a in self.attempts],
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ProfileReport":
        return cls(
            program=d.get("program", ""),
            mode=d.get("mode", "timers"),
            regions=[RegionStat.from_dict(r) for r in d.get("regions", [])],
            attempts=[AttemptRecord.from_dict(a)
                      for a in d.get("attempts", [])],
            meta=dict(d.get("meta", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProfileReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ProfileReport":
        with open(path) as fh:
            return cls.from_json(fh.read())

    def summary(self) -> str:
        lines = [f"profile of {self.program or '<anonymous>'} "
                 f"(mode={self.mode})"]
        for category in CATEGORIES:
            stats = self.by_category(category)
            if not stats:
                continue
            lines.append(f"  {category}: {self.total(category) * 1e3:.3f} ms")
            for r in sorted(stats, key=lambda r: -r.total_s):
                lines.append(f"    {r.name:<32} {r.total_s * 1e3:10.3f} ms "
                             f"x{r.count}")
        for a in self.attempts:
            status = "ok" if a.ok else f"failed ({a.error})"
            lines.append(f"  attempt {a.stage}: {a.seconds * 1e3:.3f} ms "
                         f"{status}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the collector
# ---------------------------------------------------------------------------

class ProfileCollector:
    """Accumulates region timings and attempt records for one run."""

    def __init__(self, program: str = "", mode: str = "timers"):
        self.program = program
        self.mode = mode
        self._regions: Dict[Tuple[str, str], RegionStat] = {}
        self._attempts: List[AttemptRecord] = []
        self.meta: Dict[str, Any] = {}
        # per-worker timers from parallel map chunks land concurrently; the
        # dict get/create and the RegionStat field updates must be atomic or
        # regions are dropped and counts corrupted
        self._lock = threading.Lock()

    # -------------------------------------------------------------- timers
    def add(self, category: str, name: str, seconds: float) -> None:
        key = (category, name)
        with self._lock:
            stat = self._regions.get(key)
            if stat is None:
                stat = self._regions[key] = RegionStat(category, name)
            stat.add(seconds)

    @contextlib.contextmanager
    def region(self, category: str, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(category, name, time.perf_counter() - start)

    def attempt(self, stage: str, ok: bool, seconds: float,
                error: str = "") -> AttemptRecord:
        rec = AttemptRecord(stage, ok, seconds, error)
        with self._lock:
            self._attempts.append(rec)
        return rec

    # ------------------------------------------------------------- results
    @property
    def empty(self) -> bool:
        return not self._regions and not self._attempts

    def report(self, **meta: Any) -> ProfileReport:
        merged = dict(self.meta)
        merged.update(meta)
        with self._lock:
            regions = list(self._regions.values())
            attempts = list(self._attempts)
        return ProfileReport(
            program=self.program,
            mode=self.mode,
            regions=regions,
            attempts=attempts,
            meta=merged,
        )


# ---------------------------------------------------------------------------
# activation
# ---------------------------------------------------------------------------

def current() -> Optional[ProfileCollector]:
    """The active collector, or None when instrumentation is off."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE is not None


def config_mode() -> str:
    """The globally configured mode (``instrument.mode``)."""
    from .config import Config

    return Config.get("instrument.mode")


@contextlib.contextmanager
def profile(program: str = "", mode: str = "timers",
            collector: Optional[ProfileCollector] = None
            ) -> Iterator[ProfileCollector]:
    """Activate instrumentation for the dynamic extent of the block.

    Nested activations stack: the innermost collector receives the events,
    and the previous one is restored on exit.

    >>> with profile("my_program") as prof:
    ...     my_program(A, B)
    >>> report = prof.report()
    """
    global _ACTIVE
    coll = collector if collector is not None else ProfileCollector(
        program=program, mode=mode)
    saved = _ACTIVE
    _ACTIVE = coll
    try:
        yield coll
    finally:
        _ACTIVE = saved


@contextlib.contextmanager
def record_region(category: str, name: str) -> Iterator[None]:
    """Time a region against the active collector (no-op when off)."""
    coll = _ACTIVE
    if coll is None:
        yield
        return
    with coll.region(category, name):
        yield
