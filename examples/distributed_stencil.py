"""Explicit local views: the paper's distributed jacobi_2d (§4.3).

The user takes direct control of the partitioning: arrays are scattered
into 2-D blocks, halos are exchanged with nonblocking sends/receives every
time step, and the global view is reassembled at the end — all written as
valid annotated Python through ``repro.comm``.
"""

import numpy as np

import repro
import repro.comm
from repro.distributed import run_distributed

N = repro.symbol("N")
lNx = repro.symbol("lNx")
lNy = repro.symbol("lNy")
noff = repro.symbol("noff")
soff = repro.symbol("soff")
woff = repro.symbol("woff")
eoff = repro.symbol("eoff")


@repro.program
def j2d_dist(TSTEPS: repro.int32, A: repro.float64[N, N],
             B: repro.float64[N, N]):
    lA = np.zeros((lNx + 2, lNy + 2))
    lB = np.zeros((lNx + 2, lNy + 2))
    lA[1:-1, 1:-1] = repro.comm.BlockScatter(A, (lNx, lNy))
    lB[1:-1, 1:-1] = repro.comm.BlockScatter(B, (lNx, lNy))
    for t in range(1, TSTEPS):
        repro.comm.HaloExchange(lA)
        lB[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff] = 0.2 * (
            lA[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff]
            + lA[1 + noff:lNx + 1 - soff, woff:lNy - eoff]
            + lA[1 + noff:lNx + 1 - soff, 2 + woff:lNy + 2 - eoff]
            + lA[2 + noff:lNx + 2 - soff, 1 + woff:lNy + 1 - eoff]
            + lA[noff:lNx - soff, 1 + woff:lNy + 1 - eoff])
        repro.comm.HaloExchange(lB)
        lA[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff] = 0.2 * (
            lB[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff]
            + lB[1 + noff:lNx + 1 - soff, woff:lNy - eoff]
            + lB[1 + noff:lNx + 1 - soff, 2 + woff:lNy + 2 - eoff]
            + lB[2 + noff:lNx + 2 - soff, 1 + woff:lNy + 1 - eoff]
            + lB[noff:lNx - soff, 1 + woff:lNy + 1 - eoff])
    A[:] = repro.comm.BlockGather(lA[1:-1, 1:-1], (N, N))
    B[:] = repro.comm.BlockGather(lB[1:-1, 1:-1], (N, N))


def reference(tsteps, A, B):
    for t in range(1, tsteps):
        B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:]
                               + A[2:, 1:-1] + A[:-2, 1:-1])
        A[1:-1, 1:-1] = 0.2 * (B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:]
                               + B[2:, 1:-1] + B[:-2, 1:-1])


def boundary_offsets(rank, grid):
    """The paper's noff/soff/woff/eoff: clamp updates at global boundaries."""
    nb = grid.neighbors(rank)
    return {"noff": 1 if nb["north"] < 0 else 0,
            "soff": 1 if nb["south"] < 0 else 0,
            "woff": 1 if nb["west"] < 0 else 0,
            "eoff": 1 if nb["east"] < 0 else 0}


def main():
    n, tsteps, ranks = 24, 8, 4
    rng = np.random.default_rng(0)
    A0, B0 = rng.random((n, n)), rng.random((n, n))
    Ar, Br = A0.copy(), B0.copy()
    reference(tsteps, Ar, Br)

    A, B = A0.copy(), B0.copy()
    result = run_distributed(j2d_dist, ranks, TSTEPS=tsteps, A=A, B=B,
                             lNx=n // 2, lNy=n // 2,
                             rank_args=boundary_offsets)
    error = max(np.abs(A - Ar).max(), np.abs(B - Br).max())
    print(f"{ranks} ranks, {tsteps} time steps: max |error| = {error:.2e}")
    print(f"halo messages: {result.comm_stats['messages']}, "
          f"modeled time {result.modeled_time * 1e3:.3f} ms")
    assert error < 1e-12
    print("distributed_stencil OK")


if __name__ == "__main__":
    main()
