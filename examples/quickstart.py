"""Quickstart: annotate NumPy code, inspect the SDFG, auto-optimize, run.

This walks the paper's gemm example end to end (§2.2-§3.1):

1. annotate a NumPy function with ``@repro.program`` and symbolic types;
2. translate it to the SDFG data-centric IR and look at the graph;
3. run the dataflow-coarsening pass and the auto-optimization heuristics;
4. execute the compiled program and check against NumPy.
"""

import numpy as np

import repro
from repro.autoopt import auto_optimize
from repro.ir import MapEntry

# symbolic sizes: the program is compiled once for any N/M/K (AOT, §3.3)
NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")


@repro.program
def gemm(alpha: repro.float64, beta: repro.float64,
         C: repro.float64[NI, NJ], A: repro.float64[NI, NK],
         B: repro.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C


def main():
    # -- 1. translation -----------------------------------------------------
    uncoarsened = gemm.to_sdfg(simplify=False)
    coarsened = gemm.to_sdfg(simplify=True)
    print(f"translated gemm: {uncoarsened.number_of_states()} states at -O0, "
          f"{coarsened.number_of_states()} after dataflow coarsening")

    # -- 2. auto-optimization (§3.1) -----------------------------------------
    optimized = coarsened.clone()
    auto_optimize(optimized, device="CPU")
    maps = [n for n, _ in optimized.all_nodes_recursive()
            if isinstance(n, MapEntry)]
    print(f"auto-optimized: {len(maps)} map scope(s), schedules "
          f"{sorted({m.map.schedule.value for m in maps})}")

    # the generated specialized module is inspectable, like the paper's C++
    compiled = optimized.compile()
    first_lines = "\n".join(compiled.source.splitlines()[:6])
    print(f"generated module (first lines):\n{first_lines}\n...")

    # -- 3. execution ---------------------------------------------------------
    rng = np.random.default_rng(0)
    A = rng.random((64, 48))
    B = rng.random((48, 80))
    C = rng.random((64, 80))
    expected = 1.5 * A @ B + 0.5 * C
    compiled(alpha=1.5, beta=0.5, C=C, A=A, B=B)
    error = np.abs(C - expected).max()
    print(f"max |error| vs NumPy: {error:.2e}")
    assert error < 1e-12
    print("quickstart OK")


if __name__ == "__main__":
    main()
