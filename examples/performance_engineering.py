"""Performance engineering without touching the source (§2.4, §3.4.3).

The generated SDFG is a *starting point*: transformations are applied
through the API (the cyan "performance engineering code" of the paper),
separate from the scientific program.  This example measures how each
manual transformation changes the IR-level data movement of an
element-wise chain, using the same analysis the device models consume.
"""

import numpy as np

import repro
from repro.codegen import compile_sdfg
from repro.runtime.perfmodel import analyze_program
from repro.transformations.dataflow import (GreedySubgraphFusion, LoopToMap,
                                            TransientAllocationMitigation)

N = repro.symbol("N")


@repro.program
def normalize(A: repro.float64[N, N], out: repro.float64[N, N]):
    shifted = A - np.mean(A)
    scaled = shifted / (np.max(A) - np.min(A) + 1.0)
    out[:] = scaled * scaled


def movement(sdfg, n=256):
    compiled = compile_sdfg(sdfg)
    rng = np.random.default_rng(0)
    compiled(A=rng.random((n, n)), out=np.zeros((n, n)))
    cost = analyze_program(sdfg, compiled.last_state_visits,
                           compiled.last_symbols)
    return cost


def main():
    sdfg = normalize.to_sdfg().clone()
    baseline = movement(sdfg)
    print(f"coarsened IR:  {baseline.bytes_moved / 1e6:6.2f} MB moved, "
          f"{baseline.transient_bytes / 1e6:6.2f} MB through transients, "
          f"{baseline.kernels} kernels")

    applied = sdfg.apply(GreedySubgraphFusion)
    fused = movement(sdfg)
    print(f"+{applied}x fusion:    {fused.bytes_moved / 1e6:6.2f} MB moved, "
          f"{fused.transient_bytes / 1e6:6.2f} MB through transients, "
          f"{fused.kernels} kernels")

    sdfg.apply(TransientAllocationMitigation)
    final = movement(sdfg)
    print(f"+alloc passes: {final.bytes_moved / 1e6:6.2f} MB moved, "
          f"{final.transient_bytes / 1e6:6.2f} MB through transients")

    assert fused.transient_bytes <= baseline.transient_bytes
    print("performance_engineering OK")


if __name__ == "__main__":
    main()
