"""Implicit distribution: the paper's three-call recipe for gemm (§4.1-4.2).

    sdfg.apply(DistributeElementWiseArrayOp)
    sdfg.expand_library_nodes('PBLAS')
    sdfg.apply(RemoveRedundantComm)

The original Python source never changes.  The transformed program runs on
the simulated cluster (one thread per rank, real numerics, LogGP-modeled
time), and the redundant-communication elimination of Fig. 11 is visible in
the wire-traffic counters.
"""

import numpy as np

import repro
from repro.distributed import run_distributed
from repro.transformations.distributed import (DistributeElementWiseArrayOp,
                                               RemoveRedundantComm)

NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")


@repro.program
def gemm(alpha: repro.float64, beta: repro.float64,
         C: repro.float64[NI, NJ], A: repro.float64[NI, NK],
         B: repro.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C


def distribute(eliminate_redundant: bool):
    sdfg = gemm.to_sdfg().clone()
    n_maps = sdfg.apply(DistributeElementWiseArrayOp)
    n_pblas = sdfg.expand_library_nodes(implementation="PBLAS")
    n_removed = sdfg.apply(RemoveRedundantComm) if eliminate_redundant else 0
    return sdfg, (n_maps, n_pblas, n_removed)


def main():
    rng = np.random.default_rng(0)
    M, K, N = 48, 32, 64
    ranks = 4

    for eliminate in (False, True):
        sdfg, (n_maps, n_pblas, n_removed) = distribute(eliminate)
        A = rng.random((M, K))
        B = rng.random((K, N))
        C = rng.random((M, N))
        expected = 1.5 * A @ B + 0.5 * C
        result = run_distributed(sdfg, ranks, alpha=1.5, beta=0.5,
                                 C=C, A=A, B=B)
        assert np.allclose(C, expected)
        label = "with" if eliminate else "without"
        print(f"{label:>8} RemoveRedundantComm: "
              f"{n_maps} maps distributed, {n_pblas} PBLAS expansion(s), "
              f"{n_removed} round trips removed -> "
              f"{result.comm_stats['bytes']:>8} bytes on the wire, "
              f"modeled {result.modeled_time * 1e3:.3f} ms")
    print("distributed_gemm OK")


if __name__ == "__main__":
    main()
