"""Build an SDFG directly through the IR API (the power-user path of [13]):
containers, map scopes, WCR, interstate loops — then serialize it, reload
it, export Graphviz, and execute.
"""

import json

import numpy as np

import repro
from repro.ir import SDFG, InterstateEdge, Memlet, sdfg_to_dot
from repro.ir.serialize import sdfg_from_json

N = repro.symbol("N")


def build():
    sdfg = SDFG("running_sum")
    sdfg.add_array("A", (N,), repro.float64)
    sdfg.add_array("out", (1,), repro.float64)
    sdfg.add_symbol("t")

    # state 1: out[0] += sum(A) via a WCR map
    body = sdfg.add_state("accumulate", is_start_state=True)
    body.add_mapped_tasklet(
        "reduce", {"i": "0:N"},
        {"__v": Memlet("A", "i")}, "__out = __v",
        {"__out": Memlet("out", "0", wcr="sum")})

    # run the state T times through interstate control flow
    guard = sdfg.add_state_before(body, "guard")
    done = sdfg.add_state("done")
    for edge in sdfg.in_edges(guard):
        edge.data.assignments["t"] = "0"
        edge.data._assign_code["t"] = compile("0", "<i>", "eval")
    init = sdfg.add_state_before(guard, "init")
    sdfg.add_edge(guard, done, InterstateEdge("t >= 3"))
    for edge in list(sdfg.edges()):
        if edge.src is guard and edge.dst is body:
            sdfg.remove_edge(edge)
    sdfg.add_edge(guard, body, InterstateEdge("t < 3"))
    sdfg.add_edge(body, guard, InterstateEdge(assignments={"t": "t + 1"}))
    for edge in sdfg.in_edges(guard):
        if edge.src is init:
            edge.data.assignments["t"] = "0"
            edge.data._assign_code["t"] = compile("0", "<i>", "eval")
    sdfg.validate()
    return sdfg


def main():
    sdfg = build()
    A = np.arange(5, dtype=np.float64)
    out = np.zeros(1)
    sdfg(A=A, out=out)
    print(f"3 accumulations of sum(0..4): {out[0]} (expected 30.0)")
    assert out[0] == 30.0

    restored = sdfg_from_json(json.loads(json.dumps(sdfg.to_json())))
    out2 = np.zeros(1)
    restored(A=A, out=out2)
    assert out2[0] == 30.0
    print(f"JSON round trip executes identically: {out2[0]}")

    dot = sdfg_to_dot(sdfg)
    print(f"Graphviz export: {len(dot.splitlines())} lines "
          f"(render with `dot -Tpng`)")
    print("sdfg_api_tour OK")


if __name__ == "__main__":
    main()
