"""Reproduce a slice of Fig. 12 interactively: weak scaling of three
kernels, DaCe vs. the distributed-tasking comparators, to 1,296 processes.
"""

from repro.distributed.estimator import weak_scaling_series
from repro.perf import scaling_table

PROCS = [1, 4, 16, 64, 256, 1296]


def main():
    for kernel in ("doitgen", "mvt", "gemm"):
        series = {fw: weak_scaling_series(kernel, PROCS, fw)
                  for fw in ("dace", "dask", "legate")}
        print(f"\n=== {kernel} (weak scaling, Table 2 sizes) ===")
        print(scaling_table(series))
    print("\nweak_scaling_study OK")


if __name__ == "__main__":
    main()
