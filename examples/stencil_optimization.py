"""Stencils across devices: one jacobi_2d source, three specializations.

The paper's portability claim (§3): the same annotated Python program maps
to CPU, (simulated) GPU, and (simulated) FPGA automatically.  This example
optimizes jacobi_2d for each device, verifies numerics against NumPy, and
reports the modeled runtimes the device models produce.
"""

import numpy as np

import repro
from repro.autoopt import auto_optimize
from repro.codegen import compile_sdfg
from repro.runtime.devices import (CPU_PROFILES, FPGA_PROFILES, GPU_PROFILES,
                                   cpu_time, fpga_time, gpu_time)
from repro.runtime.perfmodel import analyze_program

N = repro.symbol("N")


@repro.program
def jacobi_2d(TSTEPS: repro.int32, A: repro.float64[N, N],
              B: repro.float64[N, N]):
    for t in range(1, TSTEPS):
        B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:]
                               + A[2:, 1:-1] + A[:-2, 1:-1])
        A[1:-1, 1:-1] = 0.2 * (B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:]
                               + B[2:, 1:-1] + B[:-2, 1:-1])


def reference(tsteps, A, B):
    for t in range(1, tsteps):
        B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] + A[1:-1, 2:]
                               + A[2:, 1:-1] + A[:-2, 1:-1])
        A[1:-1, 1:-1] = 0.2 * (B[1:-1, 1:-1] + B[1:-1, :-2] + B[1:-1, 2:]
                               + B[2:, 1:-1] + B[:-2, 1:-1])


def main():
    n, tsteps = 128, 20
    rng = np.random.default_rng(0)
    A0 = rng.random((n, n))
    B0 = rng.random((n, n))
    Ar, Br = A0.copy(), B0.copy()
    reference(tsteps, Ar, Br)

    for device in ("CPU", "GPU", "FPGA"):
        sdfg = jacobi_2d.to_sdfg().clone()
        auto_optimize(sdfg, device=device)
        compiled = compile_sdfg(sdfg, device=device)
        A, B = A0.copy(), B0.copy()
        compiled(TSTEPS=tsteps, A=A, B=B)
        assert np.allclose(A, Ar), device
        cost = analyze_program(sdfg, compiled.last_state_visits,
                               compiled.last_symbols)
        if device == "CPU":
            modeled = cpu_time(cost, CPU_PROFILES["dace"])
        elif device == "GPU":
            modeled = gpu_time(cost, GPU_PROFILES["dace"])
        else:
            modeled = fpga_time(cost, FPGA_PROFILES["intel"], sdfg)
        print(f"{device:>5}: numerics exact, modeled runtime "
              f"{modeled * 1e3:8.3f} ms "
              f"({cost.bytes_moved / 1e6:.1f} MB moved, "
              f"{cost.flops / 1e6:.1f} Mflop)")
    print("stencil_optimization OK")


if __name__ == "__main__":
    main()
