"""Shared infrastructure for the paper-reproduction benchmark harnesses.

Every harness prints the corresponding paper artifact (figure series or
table rows) so its output can be compared with EXPERIMENTS.md.  The size
class defaults to ``small`` (laptop-friendly); set ``REPRO_BENCH_SIZE=large``
to approximate the paper's instances.
"""

import os

import pytest


def size_class() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "small")


@pytest.fixture(scope="session")
def bench_size() -> str:
    return size_class()


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


#: kernels whose execution at the small class goes through the per-point
#: interpreter or long sequential state machines; measured at the test
#: class to keep the harness runtime bounded (noted in EXPERIMENTS.md)
INTERPRETER_BOUND = {
    "adi", "cholesky", "crc16", "durbin", "gramschmidt", "histogram",
    "azimint_hist", "lu", "ludcmp", "mandelbrot1", "mandelbrot2",
    "nussinov", "resnet", "seidel_2d", "spmv", "stockham_fft", "symm",
    "syr2k", "syrk", "trisolv", "trmm", "cavity_flow", "softmax",
}


def size_for(name: str, requested: str) -> str:
    if requested != "test" and name in INTERPRETER_BOUND:
        return "test"
    return requested
