"""E5 / Table 2: distributed benchmark problem sizes and scaling factors."""

import pytest

from repro.bench.distributed_suite import TABLE2, scaled_sizes
from repro.simmpi.grid import balanced_dims

from conftest import run_once


def test_table2_rows(benchmark):
    lines = []

    def run():
        lines.append(f"{'benchmark':<12}{'params':<28}{'DaCe/Legate':<28}"
                     f"{'Dask':<24}{'S.F.'}")
        for bench in TABLE2.values():
            lines.append(
                f"{bench.name:<12}{','.join(bench.params):<28}"
                f"{str(bench.dace_sizes):<28}{str(bench.dask_sizes):<24}"
                f"{','.join(bench.scaling)}")

    run_once(benchmark, run)
    print("\n[Table 2]")
    print("\n".join(lines))
    assert len(TABLE2) == 11


@pytest.mark.parametrize("procs", [1, 2, 4, 16, 36, 64, 256, 1296])
def test_weak_scaling_sizes_divisible(benchmark, procs):
    """Scaled sizes stay uniform over the process grid (divisibility)."""
    def run():
        grid = balanced_dims(procs)
        for bench in TABLE2.values():
            sizes = scaled_sizes(bench, procs)
            for param, kind in zip(bench.params, bench.scaling):
                if kind != "-":
                    assert sizes[param] % (grid[0] * grid[1]) == 0, \
                        (bench.name, param, procs)

    run_once(benchmark, run)
