"""E4 / Fig. 9: FPGA runtime, Intel (Stratix 10) vs. Xilinx (Alveo U250).

Single-precision, Large instance (paper setup).  Vendor profiles differ in
hardened floating-point accumulation and stencil pattern detection; the
paper observes a noticeable Intel advantage on stencil-like applications.
"""

import numpy as np
import pytest

from repro.autoopt import auto_optimize
from repro.bench import registry
from repro.codegen import compile_sdfg
from repro.perf import runtime_series
from repro.runtime.devices import FPGA_PROFILES, detect_stencil_maps, fpga_time
from repro.runtime.perfmodel import analyze_program

from conftest import run_once, size_class, size_for

STENCILS = {"jacobi_1d", "jacobi_2d", "heat_3d", "fdtd_2d", "hdiff"}


def fpga_times(bench, size):
    if bench.program._annotation_descs() is None:
        sdfg = bench.program.to_sdfg(**bench.arguments(size)).clone()
    else:
        sdfg = bench.program.to_sdfg().clone()
    auto_optimize(sdfg, device="FPGA")
    compiled = compile_sdfg(sdfg, device="FPGA")
    compiled(**bench.arguments(size))
    cost = analyze_program(sdfg, compiled.last_state_visits,
                           compiled.last_symbols)
    # single precision (paper's FPGA configuration): halve the byte volume
    cost.bytes_read //= 2
    cost.bytes_written //= 2
    return {
        "intel": fpga_time(cost, FPGA_PROFILES["intel"], sdfg),
        "xilinx": fpga_time(cost, FPGA_PROFILES["xilinx"], sdfg),
    }, sdfg


def test_fig9_fpga_runtimes(benchmark):
    size = "test" if size_class() == "test" else "small"
    rows = {}
    stencil_flags = {}

    def run():
        for bench in registry.all_benchmarks():
            if not bench.fpga:
                continue
            try:
                rows[bench.name], sdfg = fpga_times(
                    bench, size_for(bench.name, size))
                stencil_flags[bench.name] = detect_stencil_maps(sdfg) > 0
            except Exception as exc:  # pragma: no cover
                print(f"  [fig9] {bench.name}: skipped ({exc})")

    run_once(benchmark, run)
    print("\n[Fig 9] FPGA runtime (modeled, single precision)")
    print(runtime_series(rows))
    # paper shape: Intel ahead on stencil-like applications (its toolchain's
    # stencil detection), comparable elsewhere
    stencil_rows = {n: r for n, r in rows.items()
                    if n in STENCILS and stencil_flags.get(n)}
    for name, row in stencil_rows.items():
        assert row["intel"] <= row["xilinx"], name
    print(f"\n[Fig 9] Intel faster on {len(stencil_rows)} stencil apps "
          f"(paper: Intel's stencil pattern detection)")
