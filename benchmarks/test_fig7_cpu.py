"""E2 / Fig. 7: CPU runtime and speedup over NumPy.

Two complementary measurements:

* **wall-clock** — the NumPy reference vs. our auto-optimized generated
  module, both really executed (the honest part of the claim);
* **modeled** — every framework profile (numpy, numba, pythran, gcc, icc,
  dace) evaluated on the measured IR quantities, reproducing the figure's
  who-wins structure including the geometric-mean summary.
"""

import numpy as np
import pytest

from repro.autoopt import auto_optimize
from repro.bench import registry
from repro.codegen import compile_sdfg
from repro.perf import geomean, measure, speedup_table
from repro.runtime.devices import CPU_PROFILES, cpu_time
from repro.runtime.perfmodel import analyze_program

from conftest import run_once, size_class, size_for

#: corpus subset with enough wall-clock signal at the small size class
WALLCLOCK_SUBSET = ["gemm", "k2mm", "jacobi_1d", "jacobi_2d", "heat_3d",
                    "fdtd_2d", "atax", "bicg", "mvt", "gemver", "gesummv",
                    "covariance", "floyd_warshall", "hdiff", "softmax",
                    "go_fast", "doitgen"]


def modeled_times(bench, size):
    """Framework-profile times from measured IR quantities."""
    if bench.program._annotation_descs() is None:
        sdfg = bench.program.to_sdfg(**bench.arguments(size)).clone()
    else:
        sdfg = bench.program.to_sdfg().clone()
    opt = sdfg.clone()
    auto_optimize(opt, device="CPU")
    base_c = compile_sdfg(sdfg)
    opt_c = compile_sdfg(opt)
    base_c(**bench.arguments(size))
    opt_c(**bench.arguments(size))
    unfused = analyze_program(sdfg, base_c.last_state_visits, base_c.last_symbols)
    fused = analyze_program(opt, opt_c.last_state_visits, opt_c.last_symbols)
    out = {}
    for name, profile in CPU_PROFILES.items():
        cost = fused if profile.fuses else unfused
        out[name] = cpu_time(cost, profile)
    return out


def test_fig7_modeled_speedups(benchmark):
    size = "test" if size_class() == "test" else "small"
    rows = {}

    def run():
        for bench in registry.all_benchmarks():
            try:
                rows[bench.name] = modeled_times(bench,
                                                 size_for(bench.name, size))
            except Exception as exc:  # pragma: no cover - report and continue
                print(f"  [fig7] {bench.name}: skipped ({exc})")

    run_once(benchmark, run)
    print("\n[Fig 7 | modeled] speedup over NumPy")
    print(speedup_table(rows, baseline="numpy"))
    dace_speedups = [row["numpy"] / row["dace"] for row in rows.values()
                     if row.get("dace")]
    gm = geomean(dace_speedups)
    print(f"\n[Fig 7] data-centric geomean speedup over NumPy: {gm:.2f}x "
          f"(paper: consistently outperforms prior automatic approaches)")
    assert gm > 1.0
    # the compiled-framework comparators must also beat interpreted NumPy
    numba_gm = geomean([row["numpy"] / row["numba"] for row in rows.values()])
    assert gm > numba_gm > 0.5


@pytest.mark.parametrize("name", WALLCLOCK_SUBSET)
def test_fig7_wallclock(benchmark, name):
    bench = registry.get(name)
    size = size_for(name, "test" if size_class() == "test" else "small")
    if bench.program._annotation_descs() is None:
        sdfg = bench.program.to_sdfg(**bench.arguments(size)).clone()
    else:
        sdfg = bench.program.to_sdfg().clone()
    auto_optimize(sdfg, device="CPU")
    compiled = compile_sdfg(sdfg)

    args = bench.arguments(size)
    benchmark(lambda: compiled(**args))

    ref_args = bench.arguments(size)
    ref = measure(bench.reference, repetitions=3, warmup=1,
                  setup=lambda: ((), bench.arguments(size)))
    ours = measure(lambda: compiled(**args), repetitions=3, warmup=0)
    ratio = ref.median / ours.median if ours.median else float("inf")
    print(f"\n[Fig 7 | wall] {name}: numpy {ref.median * 1e3:.2f} ms, "
          f"data-centric {ours.median * 1e3:.2f} ms ({ratio:.2f}x)")
