"""E6+E9 / Fig. 12: distributed weak-scaling runtime and efficiency on the
simulated cluster, DaCe vs. Dask vs. Legate, 1 to 1,296 processes.

Three layers:

1. **functional validation** — the transformed distributed programs run on
   simulated ranks (threads) at small scale with exact numerics (covered in
   depth by tests/test_distributed.py; revalidated here for gemm);
2. **baseline frameworks** — the daskish/legateish mini-frameworks execute
   the same kernels functionally, demonstrating their cost structures;
3. **scaling curves** — the analytic estimator (validated against the
   functional virtual clocks) extends the series to Piz-Daint scale.
"""

import numpy as np
import pytest

import repro
from repro.baselines.daskish import DaskishScheduler, from_array
from repro.baselines.legateish import LegateishRuntime
from repro.bench.distributed_suite import TABLE2
from repro.distributed import run_distributed
from repro.distributed.estimator import weak_scaling_series
from repro.perf import scaling_table
from repro.transformations.distributed import (DistributeElementWiseArrayOp,
                                               RemoveRedundantComm)

from conftest import run_once

PROCS = [1, 2, 4, 16, 36, 64, 144, 256, 576, 1296]

NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")


@repro.program
def gemm(alpha: repro.float64, beta: repro.float64,
         C: repro.float64[NI, NJ], A: repro.float64[NI, NK],
         B: repro.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C


def test_fig12_functional_gemm(benchmark):
    """Layer 1: exact numerics of the auto-distributed gemm at 4 ranks."""
    sdfg = gemm.to_sdfg().clone()
    sdfg.apply(DistributeElementWiseArrayOp)
    sdfg.expand_library_nodes(implementation="PBLAS")
    sdfg.apply(RemoveRedundantComm)

    rng = np.random.default_rng(0)
    M, K, N = 24, 16, 32
    A, B, C = rng.random((M, K)), rng.random((K, N)), rng.random((M, N))
    expected = 1.5 * A @ B + 0.5 * C
    result = run_once(benchmark, lambda: run_distributed(
        sdfg, 4, alpha=1.5, beta=0.5, C=C, A=A, B=B))
    assert np.allclose(C, expected)
    print(f"\n[Fig 12] functional 4-rank gemm: exact, "
          f"modeled {result.modeled_time * 1e3:.3f} ms, "
          f"{result.comm_stats['messages']} messages")


def test_fig12_baseline_frameworks_functional(benchmark):
    """Layer 2: the daskish and legateish mini-frameworks compute the same
    answers while exposing their characteristic overheads."""
    rng = np.random.default_rng(1)
    A = rng.random((16, 12))
    B = rng.random((12, 8))

    def run():
        scheduler = DaskishScheduler(workers=4)
        da = from_array(A, (8, 6), scheduler)
        db = from_array(B, (6, 4), scheduler)
        dask_result = (da @ db).compute()

        runtime = LegateishRuntime(nodes=4)
        lc = (runtime.array(A) @ runtime.array(B)).numpy()
        return dask_result, lc, scheduler, runtime

    dask_result, legate_result, scheduler, runtime = run_once(benchmark, run)
    assert np.allclose(dask_result, A @ B)
    assert np.allclose(legate_result, A @ B)
    print(f"\n[Fig 12] daskish: {scheduler.tasks_run} tasks, modeled "
          f"{scheduler.modeled_time * 1e3:.2f} ms; legateish: "
          f"{runtime.operations} ops, modeled "
          f"{runtime.modeled_time * 1e3:.2f} ms")
    # the central scheduler's task overhead dominates the tiny problem
    assert scheduler.modeled_time > runtime.modeled_time


@pytest.mark.parametrize("kernel", sorted(TABLE2))
def test_fig12_weak_scaling(benchmark, kernel):
    """Layer 3: the Fig. 12 runtime/efficiency series per kernel."""
    series = {}

    def run():
        for framework in ("dace", "dask", "legate"):
            series[framework] = weak_scaling_series(kernel, PROCS, framework)

    run_once(benchmark, run)
    print(f"\n[Fig 12] {kernel}")
    print(scaling_table(series))

    dace = series["dace"]
    eff = {p: dace[1] / dace[p] for p in PROCS}
    # paper shapes:
    if kernel == "doitgen":               # embarrassingly parallel
        assert eff[1296] > 0.95
    elif kernel in ("atax", "bicg", "gemver", "gesummv", "mvt"):
        assert eff[64] > 0.9               # scale very well until 64
        assert eff[1296] > 0.6             # remain above 60%
    elif kernel in ("gemm", "k2mm", "k3mm"):
        assert eff[1296] < 0.7             # ScaLAPACK-like, lowest class
    else:                                  # stencils: between the two
        assert 0.55 < eff[1296] < 0.9
    # comparators drop sharply from the second process (almost all
    # kernels; jacobi_1d is the paper's exception, where overlap hides it)
    if TABLE2[kernel].pattern not in ("stencil1d",):
        for other in ("dask", "legate"):
            t = series[other]
            if 2 in t and 1 in t:
                assert t[1] / t[2] < 0.85
    # DaCe is the fastest framework at scale
    for other in ("dask", "legate"):
        shared = set(dace) & set(series[other])
        biggest = max(shared)
        if biggest > 1:
            assert dace[biggest] < series[other][biggest]
