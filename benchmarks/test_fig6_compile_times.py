"""E1 / Fig. 6: distribution of total compilation times per device.

Compilation = frontend parse + dataflow coarsening + auto-optimization +
module generation (our backend's analogue of GCC/NVCC/OpenCL invocation).
The paper reports 90% of CPU/GPU codes compiling in under 15 s with a
single outlier; the reproduced distribution prints below.
"""

import time

import numpy as np
import pytest

from repro.autoopt import auto_optimize
from repro.bench import registry
from repro.codegen import compile_sdfg

from conftest import run_once

DEVICES = ["CPU", "GPU", "FPGA"]


def compile_benchmark(bench, device):
    start = time.perf_counter()
    if bench.program._annotation_descs() is None:
        sdfg = bench.program.to_sdfg(**bench.arguments("test")).clone()
    else:
        sdfg = bench.program.to_sdfg().clone()
    auto_optimize(sdfg, device=device)
    compile_sdfg(sdfg, device=device)
    return time.perf_counter() - start


@pytest.mark.parametrize("device", DEVICES)
def test_fig6_compile_time_distribution(benchmark, device):
    times = {}

    def run():
        for bench in registry.all_benchmarks():
            if device == "GPU" and not bench.gpu:
                continue
            if device == "FPGA" and not bench.fpga:
                continue
            times[bench.name] = compile_benchmark(bench, device)

    run_once(benchmark, run)
    values = sorted(times.values())
    median = values[len(values) // 2]
    p90 = values[int(len(values) * 0.9)]
    print(f"\n[Fig 6] {device}: {len(values)} programs, median "
          f"{median * 1e3:.1f} ms, p90 {p90 * 1e3:.1f} ms, "
          f"max {values[-1] * 1e3:.1f} ms "
          f"({max(times, key=times.get)})")
    # paper shape: 90% of programs compile fast, with at most a few outliers
    assert p90 < 60.0
