"""E7: ablation of the auto-optimization pass stack (§3.1).

Disables each pass individually and reports the modeled CPU time of a
fusion-sensitive kernel, quantifying each pass's contribution (the design
choices DESIGN.md calls out)."""

import numpy as np
import pytest

import repro
from repro.autoopt import auto_optimize
from repro.codegen import compile_sdfg
from repro.runtime.devices import CPU_PROFILES, GPU_PROFILES, cpu_time, gpu_time
from repro.runtime.perfmodel import analyze_program

from conftest import run_once

N = repro.symbol("N")


@repro.program
def chain(A: repro.float64[N], B: repro.float64[N]):
    B[:] = (A * 2.0 + 1.0) * A - A / 2.0


@repro.program
def reduction(A: repro.float64[N, N]):
    return np.sum(A * A)


def modeled(sdfg, args, device="CPU"):
    compiled = compile_sdfg(sdfg)
    compiled(**args)
    cost = analyze_program(sdfg, compiled.last_state_visits,
                           compiled.last_symbols)
    if device == "CPU":
        return cpu_time(cost, CPU_PROFILES["dace"]), cost
    return gpu_time(cost, GPU_PROFILES["dace"], include_transfers=False), cost


def test_ablation_pass_stack(benchmark):
    n = 200000
    args = lambda: {"A": np.arange(n, dtype=np.float64), "B": np.zeros(n)}
    results = {}

    def run():
        for disabled in (None, "fusion", "loop_to_map", "transients",
                         "tile_wcr"):
            sdfg = chain.to_sdfg().clone()
            passes = {disabled: False} if disabled else {}
            auto_optimize(sdfg, device="CPU", passes=passes)
            time, cost = modeled(sdfg, args())
            results["full" if disabled is None else f"-{disabled}"] = \
                (time, cost.transient_bytes)

    run_once(benchmark, run)
    print("\n[E7] auto-optimization ablation (modeled CPU time)")
    for name, (time, transient) in results.items():
        print(f"  {name:<14} {time * 1e6:9.1f} us   transient bytes "
              f"{transient}")
    # fusion is the headline pass: disabling it must cost performance
    assert results["full"][0] < results["-fusion"][0]
    # and the intermediate traffic it removes must reappear
    assert results["full"][1] < results["-fusion"][1]


def test_ablation_wcr_tiling_gpu(benchmark):
    n = 512
    args = lambda: {"A": np.ones((n, n))}
    results = {}

    def run():
        for disabled in (None, "tile_wcr"):
            sdfg = reduction.to_sdfg().clone()
            passes = {disabled: False} if disabled else {}
            auto_optimize(sdfg, device="GPU", use_fast_library=False,
                          passes=passes)
            time, cost = modeled(sdfg, args(), device="GPU")
            results["full" if disabled is None else f"-{disabled}"] = \
                (time, cost.wcr_updates)

    run_once(benchmark, run)
    print("\n[E7] WCR tiling ablation (modeled GPU time)")
    for name, (time, atomics) in results.items():
        print(f"  {name:<12} {time * 1e6:9.1f} us   conflicting updates "
              f"{atomics}")
    assert results["full"][1] < results["-tile_wcr"][1]
    assert results["full"][0] <= results["-tile_wcr"][0]
