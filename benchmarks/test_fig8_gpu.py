"""E3 / Fig. 8: GPU runtime, CuPy vs. auto-optimized data-centric code.

Both frameworks execute on the simulated V100-class device model: CuPy
launches one kernel + one intermediate array per NumPy operation (the
unfused IR); the data-centric version runs the fused, GPU-transformed IR.
The paper reports a 3.75x geomean in DaCe's favor with one exception
(resnet, where the convolution formulation produces many atomics).
"""

import pytest

from repro.autoopt import auto_optimize
from repro.bench import registry
from repro.codegen import compile_sdfg
from repro.perf import geomean, runtime_series
from repro.runtime.devices import GPU_PROFILES, gpu_time
from repro.runtime.perfmodel import analyze_program

from conftest import run_once, size_class, size_for


def gpu_times(bench, size):
    if bench.program._annotation_descs() is None:
        base = bench.program.to_sdfg(**bench.arguments(size)).clone()
    else:
        base = bench.program.to_sdfg().clone()
    opt = base.clone()
    auto_optimize(opt, device="GPU")
    base_c = compile_sdfg(base)
    opt_c = compile_sdfg(opt, device="GPU")
    base_c(**bench.arguments(size))
    opt_c(**bench.arguments(size))
    unfused = analyze_program(base, base_c.last_state_visits, base_c.last_symbols)
    fused = analyze_program(opt, opt_c.last_state_visits, opt_c.last_symbols)
    return {
        "cupy": gpu_time(unfused, GPU_PROFILES["cupy"], include_transfers=False),
        "dace": gpu_time(fused, GPU_PROFILES["dace"], include_transfers=False),
    }


def test_fig8_gpu_runtimes(benchmark):
    size = "test" if size_class() == "test" else "small"
    rows = {}

    def run():
        for bench in registry.all_benchmarks():
            if not bench.gpu:
                continue
            try:
                rows[bench.name] = gpu_times(bench,
                                             size_for(bench.name, size))
            except Exception as exc:  # pragma: no cover
                print(f"  [fig8] {bench.name}: skipped ({exc})")

    run_once(benchmark, run)
    print("\n[Fig 8] GPU runtime (modeled, lower is better)")
    print(runtime_series(rows))
    speedups = {name: row["cupy"] / row["dace"] for name, row in rows.items()}
    gm = geomean(list(speedups.values()))
    print(f"\n[Fig 8] geomean speedup over CuPy: {gm:.2f}x "
          f"(paper: 3.75x)")
    assert gm > 1.5
    # resnet is the paper's counter-example: convolution-by-accumulation
    # generates many atomics, making the unfused CuPy version competitive
    if "resnet" in speedups:
        others = geomean([s for n, s in speedups.items() if n != "resnet"])
        print(f"[Fig 8] resnet speedup {speedups['resnet']:.2f}x vs "
              f"others {others:.2f}x (paper: CuPy wins on resnet)")
        assert speedups["resnet"] < others
