"""E8: ablation of RemoveRedundantComm (§4.2, Fig. 11).

Measures the wire traffic of the distributed gemm with and without the
redundant gather-scatter elimination, on real simulated communication."""

import numpy as np
import pytest

import repro
from repro.distributed import run_distributed
from repro.transformations.distributed import (DistributeElementWiseArrayOp,
                                               RemoveRedundantComm)

from conftest import run_once

NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")


@repro.program
def gemm(alpha: repro.float64, beta: repro.float64,
         C: repro.float64[NI, NJ], A: repro.float64[NI, NK],
         B: repro.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C


def distribute(remove_redundant):
    sdfg = gemm.to_sdfg().clone()
    sdfg.apply(DistributeElementWiseArrayOp)
    sdfg.expand_library_nodes(implementation="PBLAS")
    removed = sdfg.apply(RemoveRedundantComm) if remove_redundant else 0
    return sdfg, removed


def test_redundant_comm_elimination(benchmark):
    rng = np.random.default_rng(0)
    M, K, N = 32, 16, 24
    out = {}

    def run():
        for label, flag in (("with", True), ("without", False)):
            sdfg, removed = distribute(flag)
            C = rng.random((M, N))
            result = run_distributed(sdfg, 4, alpha=1.5, beta=0.5, C=C,
                                     A=rng.random((M, K)),
                                     B=rng.random((K, N)))
            out[label] = (result, removed)

    run_once(benchmark, run)
    with_r, n_removed = out["with"]
    without_r, _ = out["without"]
    print(f"\n[E8] RemoveRedundantComm eliminated {n_removed} round trips")
    print(f"  with elimination:    {with_r.comm_stats['bytes']:>10} bytes, "
          f"modeled {with_r.modeled_time * 1e3:.3f} ms")
    print(f"  without elimination: {without_r.comm_stats['bytes']:>10} bytes, "
          f"modeled {without_r.modeled_time * 1e3:.3f} ms")
    assert n_removed >= 2
    assert with_r.comm_stats["bytes"] < without_r.comm_stats["bytes"]
    assert with_r.modeled_time <= without_r.modeled_time
