"""Tests for the distributed runtime (S13) and transformations (S14, §4)."""

import numpy as np
import pytest

import repro
import repro.comm
from repro.distributed import (gather_blocks, local_block, pgemm, pgemv,
                               ptran, run_distributed, scatter_blocks)
from repro.ir import Tasklet
from repro.simmpi import ProcessGrid, run_spmd
from repro.transformations.distributed import (DeduplicateComm,
                                               DistributeElementWiseArrayOp,
                                               RemoveRedundantComm)

NI = repro.symbol("NI")
NJ = repro.symbol("NJ")
NK = repro.symbol("NK")


def assemble(results, grid, shape):
    out = np.empty(shape)
    for rank, block in enumerate(results):
        gather_blocks(out, block, grid, rank)
    return out


class TestPBLAS:
    @pytest.mark.parametrize("size", [1, 2, 4, 6])
    def test_pgemm_matches_numpy(self, size):
        rng = np.random.default_rng(0)
        M, K, N = 12, 18, 8
        A, B = rng.random((M, K)), rng.random((K, N))

        def work(comm):
            grid = ProcessGrid(comm.size)
            la = scatter_blocks(A, grid, comm.rank)
            lb = scatter_blocks(B, grid, comm.rank)
            return pgemm(comm, grid, la, lb, (M, K, N))

        results, clocks, _ = run_spmd(work, size)
        C = assemble(results, ProcessGrid(size), (M, N))
        assert np.allclose(C, A @ B)
        if size > 1:
            assert max(clocks) > 0

    @pytest.mark.parametrize("transpose", [False, True])
    def test_pgemv_matches_numpy(self, transpose):
        rng = np.random.default_rng(1)
        M, N = 12, 8
        A = rng.random((M, N))
        x = rng.random(M if transpose else N)
        expected = A.T @ x if transpose else A @ x

        def work(comm):
            grid = ProcessGrid(comm.size)
            la = scatter_blocks(A, grid, comm.rank)
            return pgemv(comm, grid, la, _x_block(x, grid, comm.rank,
                                                  transpose, M, N),
                         (M, N), transpose=transpose)

        def _x_block(vec, grid, rank, tr, m, n):
            from repro.distributed.block import block_bounds

            row, col = grid.coords(rank)
            if not tr:
                lo, hi = block_bounds(n, grid.dims[1], col)
            else:
                lo, hi = block_bounds(m, grid.dims[0], row)
            return vec[lo:hi]

        # pblas_rt.pgemv returns the rank's row/column block, replicated
        # along the orthogonal grid dimension
        from repro.distributed.block import block_bounds

        grid = ProcessGrid(4)
        results, _, _ = run_spmd(work, 4)
        for rank, result in enumerate(results):
            row, col = grid.coords(rank)
            if not transpose:
                lo, hi = block_bounds(M, grid.dims[0], row)
            else:
                lo, hi = block_bounds(N, grid.dims[1], col)
            assert np.allclose(result, expected[lo:hi]), rank

    def test_ptran_square_grid(self):
        rng = np.random.default_rng(2)
        A = rng.random((8, 12))

        def work(comm):
            grid = ProcessGrid(comm.size)
            la = scatter_blocks(A, grid, comm.rank)
            return ptran(comm, grid, la, (8, 12))

        results, _, _ = run_spmd(work, 4)
        T = assemble(results, ProcessGrid(4), (12, 8))
        assert np.allclose(T, A.T)


class TestExplicitComm:
    def test_block_scatter_gather_roundtrip(self):
        A = np.arange(48, dtype=np.float64).reshape(8, 6)

        def work(comm):
            from repro.distributed import context

            context.set_current(context.DistContext(comm))
            try:
                block = repro.comm.BlockScatter(A)
                return repro.comm.BlockGather(block, A.shape)
            finally:
                context.set_current(None)

        results, _, _ = run_spmd(work, 4)
        for result in results:
            assert np.allclose(result, A)

    def test_halo_exchange_neighbors(self):
        def work(comm):
            from repro.distributed import context

            context.set_current(context.DistContext(comm))
            try:
                padded = np.full((4, 4), float(comm.rank))
                repro.comm.HaloExchange(padded)
                return padded
            finally:
                context.set_current(None)

        results, _, _ = run_spmd(work, 4)   # 2x2 grid
        # rank 0's east halo comes from rank 1, south halo from rank 2
        assert np.allclose(results[0][1:-1, -1], 1.0)
        assert np.allclose(results[0][-1, 1:-1], 2.0)
        # interior untouched
        assert np.allclose(results[0][1:-1, 1:-1], 0.0)

    def test_comm_outside_context_fails(self):
        with pytest.raises(RuntimeError):
            repro.comm.BlockScatter(np.zeros((4, 4)))


class TestExplicitDistributedProgram:
    def test_jacobi_2d_matches_shared_memory(self):
        lNx = repro.symbol("lNx")
        lNy = repro.symbol("lNy")
        noff = repro.symbol("noff")
        soff = repro.symbol("soff")
        woff = repro.symbol("woff")
        eoff = repro.symbol("eoff")
        N_ = repro.symbol("N")

        @repro.program
        def j2d_dist(TSTEPS: repro.int32, A: repro.float64[N_, N_],
                     B: repro.float64[N_, N_]):
            lA = np.zeros((lNx + 2, lNy + 2))
            lB = np.zeros((lNx + 2, lNy + 2))
            lA[1:-1, 1:-1] = repro.comm.BlockScatter(A, (lNx, lNy))
            lB[1:-1, 1:-1] = repro.comm.BlockScatter(B, (lNx, lNy))
            for t in range(1, TSTEPS):
                repro.comm.HaloExchange(lA)
                lB[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff] = 0.2 * (
                    lA[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff]
                    + lA[1 + noff:lNx + 1 - soff, woff:lNy - eoff]
                    + lA[1 + noff:lNx + 1 - soff, 2 + woff:lNy + 2 - eoff]
                    + lA[2 + noff:lNx + 2 - soff, 1 + woff:lNy + 1 - eoff]
                    + lA[noff:lNx - soff, 1 + woff:lNy + 1 - eoff])
                repro.comm.HaloExchange(lB)
                lA[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff] = 0.2 * (
                    lB[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff]
                    + lB[1 + noff:lNx + 1 - soff, woff:lNy - eoff]
                    + lB[1 + noff:lNx + 1 - soff, 2 + woff:lNy + 2 - eoff]
                    + lB[2 + noff:lNx + 2 - soff, 1 + woff:lNy + 1 - eoff]
                    + lB[noff:lNx - soff, 1 + woff:lNy + 1 - eoff])
            A[:] = repro.comm.BlockGather(lA[1:-1, 1:-1], (N_, N_))
            B[:] = repro.comm.BlockGather(lB[1:-1, 1:-1], (N_, N_))

        def offsets(rank, grid):
            nb = grid.neighbors(rank)
            return {"noff": 1 if nb["north"] < 0 else 0,
                    "soff": 1 if nb["south"] < 0 else 0,
                    "woff": 1 if nb["west"] < 0 else 0,
                    "eoff": 1 if nb["east"] < 0 else 0}

        rng = np.random.default_rng(0)
        n = 12
        A0, B0 = rng.random((n, n)), rng.random((n, n))
        Ar, Br = A0.copy(), B0.copy()
        for t in range(1, 4):
            Br[1:-1, 1:-1] = 0.2 * (Ar[1:-1, 1:-1] + Ar[1:-1, :-2]
                                    + Ar[1:-1, 2:] + Ar[2:, 1:-1]
                                    + Ar[:-2, 1:-1])
            Ar[1:-1, 1:-1] = 0.2 * (Br[1:-1, 1:-1] + Br[1:-1, :-2]
                                    + Br[1:-1, 2:] + Br[2:, 1:-1]
                                    + Br[:-2, 1:-1])
        Ad, Bd = A0.copy(), B0.copy()
        result = run_distributed(j2d_dist, 4, TSTEPS=4, A=Ad, B=Bd,
                                 lNx=n // 2, lNy=n // 2, rank_args=offsets)
        assert np.allclose(Ad, Ar)
        assert np.allclose(Bd, Br)
        assert result.modeled_time > 0
        assert result.comm_stats["messages"] > 0


class TestDistributionTransformations:
    def _gemm_program(self):
        @repro.program
        def gemm(alpha: repro.float64, beta: repro.float64,
                 C: repro.float64[NI, NJ], A: repro.float64[NI, NK],
                 B: repro.float64[NK, NJ]):
            C[:] = alpha * A @ B + beta * C

        return gemm

    def test_elementwise_distribution_functional(self):
        @repro.program
        def scale(alpha: repro.float64, A: repro.float64[NI, NJ],
                  B: repro.float64[NI, NJ]):
            B[:] = alpha * A

        sdfg = scale.to_sdfg().clone()
        assert sdfg.apply(DistributeElementWiseArrayOp) == 1
        A = np.arange(24, dtype=np.float64).reshape(4, 6)
        B = np.zeros((4, 6))
        run_distributed(sdfg, 4, alpha=3.0, A=A, B=B)
        assert np.allclose(B, 3 * A)

    def test_full_gemm_pipeline(self):
        """§4.2: distribute + PBLAS + redundant-communication elimination,
        exactly the paper's three-call recipe."""
        sdfg = self._gemm_program().to_sdfg().clone()
        n_dist = sdfg.apply(DistributeElementWiseArrayOp)
        n_pblas = sdfg.expand_library_nodes(implementation="PBLAS")
        n_removed = sdfg.apply(RemoveRedundantComm)
        assert n_dist == 3          # alpha*A, beta*C, tmp1+tmp2
        assert n_pblas == 1
        assert n_removed >= 2       # Fig. 11: tmp1 and tmp2 round trips

        rng = np.random.default_rng(5)
        M, K, N = 12, 8, 16
        A, B, C = rng.random((M, K)), rng.random((K, N)), rng.random((M, N))
        expected = 1.5 * A @ B + 0.5 * C
        run_distributed(sdfg, 4, alpha=1.5, beta=0.5, C=C, A=A, B=B)
        assert np.allclose(C, expected)

    def test_redundant_comm_reduces_messages(self):
        base = self._gemm_program().to_sdfg().clone()
        base.apply(DistributeElementWiseArrayOp)
        base.expand_library_nodes(implementation="PBLAS")
        optimized = base.clone()
        optimized.apply(RemoveRedundantComm)

        rng = np.random.default_rng(6)
        M, K, N = 8, 8, 8
        def args():
            return dict(alpha=1.0, beta=1.0, C=rng.random((M, N)),
                        A=rng.random((M, K)), B=rng.random((K, N)))

        r_base = run_distributed(base, 4, **args())
        r_opt = run_distributed(optimized, 4, **args())
        assert r_opt.comm_stats["bytes"] < r_base.comm_stats["bytes"]

    def test_final_gather_preserved(self):
        """Program outputs must still be gathered (non-transient globals)."""
        sdfg = self._gemm_program().to_sdfg().clone()
        sdfg.apply(DistributeElementWiseArrayOp)
        sdfg.expand_library_nodes(implementation="PBLAS")
        sdfg.apply(RemoveRedundantComm)
        gathers = [n for n, _ in sdfg.all_nodes_recursive()
                   if isinstance(n, Tasklet)
                   and getattr(n, "comm_op", {}).get("kind") == "gather"]
        assert any(sdfg.arrays[g.comm_op["global"]].transient is False
                   for g in gathers)

    def test_pgemv_distribution(self):
        M_ = repro.symbol("M")
        N_ = repro.symbol("N")

        @repro.program
        def atax(A: repro.float64[M_, N_], x: repro.float64[N_],
                 y: repro.float64[N_]):
            y[:] = (A @ x) @ A

        sdfg = atax.to_sdfg().clone()
        sdfg.expand_library_nodes(implementation="PBLAS")
        sdfg.apply(DeduplicateComm)
        rng = np.random.default_rng(7)
        A = rng.random((12, 8))
        x = rng.random(8)
        y = np.zeros(8)
        run_distributed(sdfg, 4, A=A, x=x, y=y)
        assert np.allclose(y, A.T @ (A @ x))
