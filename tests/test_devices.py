"""Tests for the workload analysis (S5/S17) and the device models
(S10/S11): the modeled orderings the paper's figures rest on."""

import numpy as np
import pytest

import repro
from repro.autoopt import auto_optimize
from repro.codegen import compile_sdfg
from repro.config import Config
from repro.runtime.devices import (CPU_PROFILES, FPGA_PROFILES, GPU_PROFILES,
                                   cpu_time, detect_stencil_maps, fpga_time,
                                   gpu_time)
from repro.runtime.perfmodel import ProgramCost, analyze_program, tasklet_flops

N = repro.symbol("N")


def profile_of(prog, optimize=None, device="CPU", **args):
    sdfg = prog.to_sdfg().clone()
    if optimize:
        auto_optimize(sdfg, device=device)
    compiled = compile_sdfg(sdfg)
    compiled(**args)
    return sdfg, analyze_program(sdfg, compiled.last_state_visits,
                                 compiled.last_symbols)


class TestTaskletFlops:
    def test_simple_expression(self):
        assert tasklet_flops("__out = (__a) * (__b)") == 1

    def test_transcendental_weighting(self):
        cheap = tasklet_flops("__out = __a + __b")
        costly = tasklet_flops("__out = np.exp(__a)")
        assert costly > cheap

    def test_garbage_code_safe(self):
        assert tasklet_flops("not python!!") == 1


class TestAnalysis:
    def test_bytes_scale_with_size(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A + 1.0

        _, small = profile_of(prog, A=np.zeros(100), B=np.zeros(100))
        _, large = profile_of(prog, A=np.zeros(1000), B=np.zeros(1000))
        assert large.bytes_moved == pytest.approx(10 * small.bytes_moved,
                                                  rel=0.05)

    def test_loop_visits_multiply_cost(self):
        @repro.program
        def prog(A: repro.float64[N], T: repro.int32):
            for t in range(T):
                A += 1.0

        _, once = profile_of(prog, A=np.zeros(50), T=1)
        _, many = profile_of(prog, A=np.zeros(50), T=10)
        assert many.bytes_moved == pytest.approx(10 * once.bytes_moved,
                                                 rel=0.01)

    def test_fusion_removes_transient_traffic(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = (A * 2.0 + 1.0) * A

        _, unfused = profile_of(prog, A=np.zeros(500), B=np.zeros(500))
        _, fused = profile_of(prog, optimize=True,
                              A=np.zeros(500), B=np.zeros(500))
        assert fused.transient_bytes < unfused.transient_bytes
        assert fused.kernels < unfused.kernels

    def test_library_flops_counted(self):
        @repro.program
        def prog(A: repro.float64[N, N], B: repro.float64[N, N],
                 C: repro.float64[N, N]):
            C[:] = A @ B

        _, cost = profile_of(prog, A=np.zeros((16, 16)),
                             B=np.zeros((16, 16)), C=np.zeros((16, 16)))
        assert cost.library_flops == 2 * 16 ** 3

    def test_argument_footprint(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0

        _, cost = profile_of(prog, A=np.zeros(128))
        assert cost.argument_bytes_in == 128 * 8


class TestCPUModel:
    def _cost(self):
        return ProgramCost(bytes_read=8_000_000, bytes_written=8_000_000,
                           flops=2_000_000, kernels=4,
                           transient_bytes=8_000_000)

    def test_dace_beats_numpy(self):
        cost = self._cost()
        assert cpu_time(cost, CPU_PROFILES["dace"]) \
            < cpu_time(cost, CPU_PROFILES["numpy"])

    def test_compiled_frameworks_beat_interpreter(self):
        cost = self._cost()
        numpy_t = cpu_time(cost, CPU_PROFILES["numpy"])
        for name in ("numba", "pythran", "dace"):
            assert cpu_time(cost, CPU_PROFILES[name]) < numpy_t, name

    def test_dispatch_overhead_dominates_tiny_kernels(self):
        tiny = ProgramCost(bytes_read=80, bytes_written=80, flops=20,
                           kernels=100)
        numpy_t = cpu_time(tiny, CPU_PROFILES["numpy"])
        gcc_t = cpu_time(tiny, CPU_PROFILES["gcc"])
        assert gcc_t < numpy_t  # paper: short kernels benefit from C


class TestGPUModel:
    def test_fusion_wins(self):
        cost = ProgramCost(bytes_read=4_000_000, bytes_written=4_000_000,
                           flops=1_000_000, kernels=6,
                           transient_bytes=6_000_000)
        assert gpu_time(cost, GPU_PROFILES["dace"]) \
            < gpu_time(cost, GPU_PROFILES["cupy"])

    def test_atomics_penalized(self):
        base = ProgramCost(bytes_read=1000, bytes_written=1000, flops=1000,
                           kernels=1)
        racy = ProgramCost(bytes_read=1000, bytes_written=1000, flops=1000,
                           kernels=1, wcr_updates=1_000_000)
        assert gpu_time(racy, GPU_PROFILES["dace"]) \
            > gpu_time(base, GPU_PROFILES["dace"])

    def test_transfers_optional(self):
        cost = ProgramCost(bytes_read=1000, bytes_written=1000, flops=10,
                           kernels=1, argument_bytes_in=10_000_000,
                           argument_bytes_out=10_000_000)
        with_t = gpu_time(cost, GPU_PROFILES["dace"], include_transfers=True)
        without = gpu_time(cost, GPU_PROFILES["dace"], include_transfers=False)
        assert with_t > without

    def test_wcr_tiling_reduces_modeled_atomics(self):
        @repro.program
        def prog(A: repro.float64[N, N]):
            return np.sum(A * A)

        untiled = prog.to_sdfg().clone()
        auto_optimize(untiled, device="GPU", use_fast_library=False,
                      passes={"tile_wcr": False})
        tiled = prog.to_sdfg().clone()
        auto_optimize(tiled, device="GPU", use_fast_library=False)
        A = np.ones((64, 64))
        c1 = compile_sdfg(untiled)
        c1(A=A)
        c2 = compile_sdfg(tiled)
        c2(A=A)
        cost_untiled = analyze_program(untiled, c1.last_state_visits,
                                       c1.last_symbols)
        cost_tiled = analyze_program(tiled, c2.last_state_visits,
                                     c2.last_symbols)
        assert cost_tiled.wcr_updates < cost_untiled.wcr_updates


class TestFPGAModel:
    def test_streaming_avoids_dram(self):
        base = ProgramCost(bytes_read=8_000_000, bytes_written=8_000_000,
                           kernels=2, map_iterations=1_000_000)
        streamed = ProgramCost(bytes_read=8_000_000, bytes_written=8_000_000,
                               kernels=2, map_iterations=1_000_000,
                               stream_bytes=8_000_000)
        assert fpga_time(streamed, FPGA_PROFILES["intel"]) \
            <= fpga_time(base, FPGA_PROFILES["intel"])

    def test_accumulation_hardware_difference(self):
        """Intel's hardened float accumulation vs Xilinx interleaving."""
        cost = ProgramCost(bytes_read=1_000_000, bytes_written=8,
                           kernels=1, map_iterations=125_000,
                           wcr_updates=125_000)
        intel = fpga_time(cost, FPGA_PROFILES["intel"])
        xilinx_interleaved = fpga_time(cost, FPGA_PROFILES["xilinx"],
                                       interleaved_accumulation=True)
        xilinx_naive = fpga_time(cost, FPGA_PROFILES["xilinx"],
                                 interleaved_accumulation=False)
        assert intel <= xilinx_interleaved < xilinx_naive

    def test_stencil_detection(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[1:-1] = A[:-2] + A[1:-1] + A[2:]

        sdfg = prog.to_sdfg().clone()
        auto_optimize(sdfg, device="FPGA")
        assert detect_stencil_maps(sdfg) >= 1

    def test_non_stencil_not_detected(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 2.0

        sdfg = prog.to_sdfg().clone()
        auto_optimize(sdfg, device="FPGA")
        assert detect_stencil_maps(sdfg) == 0


class TestConfig:
    def test_override_restores(self):
        before = Config.get("gpu.kernel_launch_us")
        with Config.override(gpu__kernel_launch_us=99.0):
            assert Config.get("gpu.kernel_launch_us") == 99.0
        assert Config.get("gpu.kernel_launch_us") == before

    def test_unknown_key_rejected(self):
        with pytest.raises(KeyError):
            Config.get("no.such.key")
        with pytest.raises(KeyError):
            Config.set("no.such.key", 1)
