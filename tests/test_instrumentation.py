"""Tests for the instrumentation & profiling subsystem (Fig. 6/7 substrate):
region timers, pass timers, attempt records, the JSON report schema, and the
zero-overhead-when-off guarantee."""

import json
import time
import warnings

import numpy as np
import pytest

import repro
from repro import instrumentation
from repro.config import Config
from repro.instrumentation import (AttemptRecord, ProfileCollector,
                                   ProfileReport, RegionStat)
from repro.ir import SDFG, Memlet
from repro.resilience import ResilienceWarning
from repro.runtime.executor import run_sdfg

N = repro.symbol("N")


def _vecadd_sdfg():
    sdfg = SDFG("vecadd")
    sdfg.add_array("A", (N,), repro.float64)
    sdfg.add_array("B", (N,), repro.float64)
    state = sdfg.add_state("compute")
    state.add_mapped_tasklet("axpy", {"i": "0:N"},
                             {"__a": Memlet("A", "i")}, "__out = __a + 1.0",
                             {"__out": Memlet("B", "i")})
    return sdfg


# ---------------------------------------------------------------------------
# report dataclasses and serialization
# ---------------------------------------------------------------------------

class TestReportSchema:
    def test_region_stat_aggregates(self):
        stat = RegionStat("map", "axpy")
        stat.add(0.5)
        stat.add(0.25)
        assert stat.count == 2
        assert stat.total_s == pytest.approx(0.75)
        assert stat.min_s == pytest.approx(0.25)
        assert stat.max_s == pytest.approx(0.5)

    def test_json_round_trip(self):
        report = ProfileReport(program="p", mode="timers", meta={"device": "CPU"})
        report.regions.append(RegionStat("state", "s0", 2, 0.5, 0.2, 0.3))
        report.regions.append(RegionStat("pass", "fusion", 1, 0.1, 0.1, 0.1))
        report.attempts.append(AttemptRecord("compiled", False, 0.01,
                                             "RuntimeError: boom"))
        report.attempts.append(AttemptRecord("interpreter", True, 0.02))
        restored = ProfileReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert restored.get("state", "s0").count == 2
        assert restored.attempts[0].error == "RuntimeError: boom"

    def test_schema_tag_and_shape(self):
        d = ProfileReport(program="x").to_dict()
        assert d["schema"] == "repro-profile/1"
        assert set(d) == {"schema", "program", "mode", "regions",
                          "attempts", "meta"}
        json.dumps(d)  # must be JSON-serializable as-is

    def test_save_load(self, tmp_path):
        report = ProfileReport(program="p")
        report.regions.append(RegionStat("phase", "compile", 1, 1.0, 1.0, 1.0))
        path = str(tmp_path / "prof.json")
        report.save(path)
        assert ProfileReport.load(path).to_dict() == report.to_dict()

    def test_queries(self):
        report = ProfileReport()
        report.regions.append(RegionStat("pass", "a", 1, 0.25, 0.25, 0.25))
        report.regions.append(RegionStat("pass", "b", 1, 0.5, 0.5, 0.5))
        report.regions.append(RegionStat("map", "m", 1, 9.0, 9.0, 9.0))
        assert report.total("pass") == pytest.approx(0.75)
        assert [r.name for r in report.by_category("pass")] == ["a", "b"]
        assert report.get("pass", "missing") is None

    def test_summary_mentions_regions_and_attempts(self):
        report = ProfileReport(program="p")
        report.regions.append(RegionStat("map", "axpy", 3, 0.3, 0.1, 0.1))
        report.attempts.append(AttemptRecord("compiled", False, 0.1, "E: x"))
        text = report.summary()
        assert "axpy" in text and "attempt compiled" in text


# ---------------------------------------------------------------------------
# collector & activation
# ---------------------------------------------------------------------------

class TestCollector:
    def test_off_by_default(self):
        assert instrumentation.current() is None
        assert not instrumentation.enabled()
        assert Config.get("instrument.mode") == "off"

    def test_profile_context_stacks_and_restores(self):
        with instrumentation.profile("outer") as outer:
            assert instrumentation.current() is outer
            with instrumentation.profile("inner") as inner:
                assert instrumentation.current() is inner
            assert instrumentation.current() is outer
        assert instrumentation.current() is None

    def test_record_region_noop_when_off(self):
        with instrumentation.record_region("map", "m"):
            pass  # must not raise nor record anywhere

    def test_region_timer_measures(self):
        coll = ProfileCollector("p")
        with coll.region("phase", "sleep"):
            time.sleep(0.01)
        stat = coll.report().get("phase", "sleep")
        assert stat.count == 1
        assert stat.total_s >= 0.009

    def test_empty_property(self):
        coll = ProfileCollector()
        assert coll.empty
        coll.add("pass", "x", 0.1)
        assert not coll.empty


# ---------------------------------------------------------------------------
# interpreter region timers
# ---------------------------------------------------------------------------

class TestInterpreterTimers:
    def test_state_and_map_regions_recorded(self):
        sdfg = _vecadd_sdfg()
        A = np.arange(6, dtype=np.float64)
        B = np.zeros(6)
        with instrumentation.profile("vecadd") as coll:
            run_sdfg(sdfg, A=A, B=B)
        report = coll.report()
        assert np.allclose(B, A + 1)
        assert report.get("state", "compute").count == 1
        assert report.get("map", "axpy").count == 1

    def test_nothing_recorded_when_off(self):
        sdfg = _vecadd_sdfg()
        coll = ProfileCollector("witness")
        run_sdfg(sdfg, A=np.zeros(4), B=np.zeros(4))
        assert coll.empty
        assert instrumentation.current() is None


# ---------------------------------------------------------------------------
# generated-code timers & the zero-overhead-when-off guarantee
# ---------------------------------------------------------------------------

class TestCompiledTimers:
    def test_plain_module_is_hook_free(self):
        from repro.codegen import compile_sdfg

        compiled = compile_sdfg(_vecadd_sdfg())
        assert "__prof" not in compiled.source
        assert not compiled.instrumented

    def test_instrumented_module_records_regions(self):
        from repro.codegen import compile_sdfg

        compiled = compile_sdfg(_vecadd_sdfg(), instrument=True)
        assert "__prof_add" in compiled.source
        A = np.arange(8, dtype=np.float64)
        B = np.zeros(8)
        with instrumentation.profile("vecadd") as coll:
            compiled(A=A, B=B)
        report = coll.report()
        assert np.allclose(B, A + 1)
        assert report.get("state", "compute").count == 1
        assert report.get("map", "axpy").count == 1

    def test_instrumented_module_silent_without_collector(self):
        from repro.codegen import compile_sdfg

        compiled = compile_sdfg(_vecadd_sdfg(), instrument=True)
        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        compiled(A=A, B=B)  # no active collector: hooks must no-op
        assert np.allclose(B, A + 1)


# ---------------------------------------------------------------------------
# @program integration
# ---------------------------------------------------------------------------

class TestProgramIntegration:
    def test_off_by_default_records_nothing(self):
        @repro.program
        def scale(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 2.0

        A = np.arange(5, dtype=np.float64)
        B = np.zeros(5)
        scale(A=A, B=B)
        assert np.allclose(B, A * 2)
        assert scale.last_profile is None
        # the fast path compiles a hook-free module
        compiled = scale.compile(A=A, B=B)
        assert "__prof" not in compiled.source

    def test_instrument_kwarg_produces_report(self):
        @repro.program(instrument="timers")
        def scale(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 2.0

        A = np.arange(5, dtype=np.float64)
        B = np.zeros(5)
        scale(A=A, B=B)
        report = scale.last_profile
        assert isinstance(report, ProfileReport)
        assert report.program == "scale"
        phases = {r.name for r in report.by_category("phase")}
        assert {"compile", "execute"} <= phases
        assert report.by_category("state"), "generated module state timers"

    def test_config_mode_enables_globally(self):
        @repro.program
        def scale(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 3.0

        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        with Config.override(instrument__mode="timers"):
            scale(A=A, B=B)
        assert np.allclose(B, A * 3)
        assert isinstance(scale.last_profile, ProfileReport)
        # back to off: a new call leaves last_profile untouched
        before = scale.last_profile
        scale(A=A, B=B)
        assert scale.last_profile is before

    def test_enclosing_profile_block_aggregates(self):
        @repro.program(instrument="timers")
        def scale(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 2.0

        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        with instrumentation.profile("session") as coll:
            scale(A=A, B=B)
        # the outer collector got the events; last_profile is not overwritten
        assert not coll.empty
        assert coll.report().by_category("phase")


# ---------------------------------------------------------------------------
# pass-level timers (Fig. 6 analogue)
# ---------------------------------------------------------------------------

class TestPassTimers:
    def test_pass_totals_bounded_by_wall_time(self):
        from repro.autoopt import auto_optimize

        @repro.program
        def mm(A: repro.float64[N, N], B: repro.float64[N, N],
               C: repro.float64[N, N]):
            for i, j in repro.map[0:N, 0:N]:
                C[i, j] = A[i, j] + B[i, j]

        sdfg = mm.to_sdfg().clone()
        with instrumentation.profile("mm") as coll:
            start = time.perf_counter()
            sdfg.simplify()
            auto_optimize(sdfg, device="CPU")
            wall = time.perf_counter() - start
        report = coll.report()
        passes = report.by_category("pass")
        assert passes, "simplify/auto_optimize must report pass timings"
        assert any(r.name.startswith("autoopt.") for r in passes)
        # each pass ran inside the measured window: totals cannot exceed it
        total = report.total("pass")
        assert 0.0 < total <= wall + 0.05

    def test_no_pass_timing_when_off(self):
        @repro.program
        def f(A: repro.float64[N]):
            A[:] = A + 1.0

        sdfg = f.to_sdfg().clone()
        sdfg.simplify()  # must not raise with no collector active
        assert instrumentation.current() is None


# ---------------------------------------------------------------------------
# degradation attempts
# ---------------------------------------------------------------------------

class _PoisonedCompiled:
    def __call__(self, **kwargs):
        raise RuntimeError("simulated runtime crash")


class TestDegradeAttempts:
    def _poisoned_program(self):
        @repro.program
        def triple(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 3.0

        A = np.arange(6, dtype=np.float64)
        B = np.zeros(6)
        # poison every compiled variant (plain and instrumented)
        for instrument in (False, True):
            triple.compile(A=A, B=B, instrument=instrument)
        for key in list(triple._compiled_cache):
            triple._compiled_cache[key] = _PoisonedCompiled()
        return triple, A, B

    def test_attempts_recorded_in_degrade_mode(self):
        triple, A, B = self._poisoned_program()
        with Config.override(resilience__mode="degrade"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ResilienceWarning)
                triple(A=A, B=B)
        assert np.allclose(B, A * 3)
        stages = [(a["stage"], a["ok"]) for a in triple.last_attempts]
        assert stages == [("compiled", False), ("interpreter", True)]
        assert triple.last_attempts[0]["error"].startswith("RuntimeError")
        assert all(a["seconds"] >= 0.0 for a in triple.last_attempts)

    def test_attempts_land_in_profile_report(self):
        triple, A, B = self._poisoned_program()
        with Config.override(resilience__mode="degrade",
                             instrument__mode="timers"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ResilienceWarning)
                triple(A=A, B=B)
        report = triple.last_profile
        assert isinstance(report, ProfileReport)
        assert [a.stage for a in report.attempts] == ["compiled", "interpreter"]
        assert report.attempts[0].ok is False
        assert report.attempts[1].ok is True
        # the failure report serializes alongside (fallback tier recorded)
        dumped = triple.failure_report.to_dict()
        assert dumped and dumped[-1]["action"] == "fell-back:interpreter"
        json.dumps(dumped)
