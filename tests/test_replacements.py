"""Tests for the NumPy function replacements (§2.3 library-call lowering)."""

import numpy as np
import pytest

import repro

N = repro.symbol("N")
M = repro.symbol("M")


class TestAllocation:
    def test_zeros_refilled_each_iteration(self):
        """np.zeros inside a loop must produce fresh zeros every iteration."""
        @repro.program
        def prog(out: repro.float64[3]):
            for t in range(3):
                tmp = np.zeros((4,))
                tmp += 1.0
                out[t] = np.sum(tmp)

        out = np.zeros(3)
        prog(out=out)
        assert np.allclose(out, 4.0)

    def test_ones_full_empty(self):
        @repro.program
        def prog(a: repro.float64[N]):
            x = np.ones((N,))
            y = np.full((N,), 2.5)
            a[:] = x + y

        a = np.zeros(4)
        prog(a=a)
        assert np.allclose(a, 3.5)

    def test_zeros_like(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            z = np.zeros_like(A)
            B[:] = z + 1.0

        B = np.zeros(3)
        prog(A=np.ones(3), B=B)
        assert np.allclose(B, 1.0)

    def test_symbolic_shape_alloc(self):
        @repro.program
        def prog(A: repro.float64[N, M]):
            t = np.zeros((N, M))
            A[:] = t + 5.0

        A = np.zeros((2, 3))
        prog(A=A)
        assert np.allclose(A, 5.0)


class TestReductions:
    @pytest.mark.parametrize("func,expected", [
        (np.sum, 10.0), (np.max, 4.0), (np.min, 0.0), (np.prod, 0.0)])
    def test_full_reduction(self, func, expected):
        captured = {"f": func}

        @repro.program
        def prog(A: repro.float64[N]):
            return captured["f"](A)

        # rebuild with the actual function inline (closures resolve statically)
        if func is np.sum:
            @repro.program
            def prog(A: repro.float64[N]):
                return np.sum(A)
        elif func is np.max:
            @repro.program
            def prog(A: repro.float64[N]):
                return np.max(A)
        elif func is np.min:
            @repro.program
            def prog(A: repro.float64[N]):
                return np.min(A)
        else:
            @repro.program
            def prog(A: repro.float64[N]):
                return np.prod(A)

        A = np.arange(5, dtype=np.float64)
        assert prog(A=A) == pytest.approx(expected)

    def test_axis_reduction(self):
        @repro.program
        def prog(A: repro.float64[N, M], out: repro.float64[M]):
            out[:] = np.sum(A, axis=0)

        A = np.arange(6, dtype=np.float64).reshape(2, 3)
        out = np.zeros(3)
        prog(A=A, out=out)
        assert np.allclose(out, A.sum(axis=0))

    def test_mean(self):
        @repro.program
        def prog(A: repro.float64[N]):
            return np.mean(A)

        assert prog(A=np.arange(4, dtype=np.float64)) == pytest.approx(1.5)

    def test_mean_axis(self):
        @repro.program
        def prog(A: repro.float64[N, M], out: repro.float64[M]):
            out[:] = np.mean(A, axis=0)

        A = np.arange(6, dtype=np.float64).reshape(2, 3)
        out = np.zeros(3)
        prog(A=A, out=out)
        assert np.allclose(out, A.mean(axis=0))

    def test_method_sum(self):
        @repro.program
        def prog(A: repro.float64[N]):
            return A.sum()

        assert prog(A=np.ones(5)) == 5.0


class TestUfuncs:
    def test_unary_chain(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = np.sqrt(np.exp(np.abs(A)))

        A = np.linspace(-1, 1, 5)
        B = np.zeros(5)
        prog(A=A, B=B)
        assert np.allclose(B, np.sqrt(np.exp(np.abs(A))))

    def test_trig(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = np.sin(A) * np.sin(A) + np.cos(A) * np.cos(A)

        A = np.linspace(0, 3, 7)
        B = np.zeros(7)
        prog(A=A, B=B)
        assert np.allclose(B, 1.0)

    def test_binary_maximum(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N], C: repro.float64[N]):
            C[:] = np.maximum(A, B)

        A = np.array([1.0, 5.0, 2.0])
        B = np.array([3.0, 1.0, 2.0])
        C = np.zeros(3)
        prog(A=A, B=B, C=C)
        assert np.allclose(C, [3, 5, 2])

    def test_integer_sqrt_promotes_to_float(self):
        @repro.program
        def prog(A: repro.int64[N], B: repro.float64[N]):
            B[:] = np.sqrt(A)

        A = np.array([1, 4, 9], dtype=np.int64)
        B = np.zeros(3)
        prog(A=A, B=B)
        assert np.allclose(B, [1, 2, 3])

    def test_clip(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = np.clip(A, 0.0, 1.0)

        A = np.array([-1.0, 0.5, 3.0])
        B = np.zeros(3)
        prog(A=A, B=B)
        assert np.allclose(B, [0, 0.5, 1])

    def test_flip(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = np.flip(A)

        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        prog(A=A, B=B)
        assert np.allclose(B, A[::-1])

    def test_power_float_exponent(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A ** (-1.5)

        A = np.array([1.0, 4.0])
        B = np.zeros(2)
        prog(A=A, B=B)
        assert np.allclose(B, A ** -1.5)


class TestLinearAlgebra:
    def test_np_dot(self):
        @repro.program
        def prog(A: repro.float64[N, M], x: repro.float64[M],
                 y: repro.float64[N]):
            y[:] = np.dot(A, x)

        rng = np.random.default_rng(0)
        A, x = rng.random((3, 4)), rng.random(4)
        y = np.zeros(3)
        prog(A=A, x=x, y=y)
        assert np.allclose(y, A @ x)

    def test_outer(self):
        @repro.program
        def prog(a: repro.float64[N], b: repro.float64[M],
                 C: repro.float64[N, M]):
            C[:] = np.outer(a, b)

        a = np.arange(3, dtype=np.float64)
        b = np.arange(4, dtype=np.float64)
        C = np.zeros((3, 4))
        prog(a=a, b=b, C=C)
        assert np.allclose(C, np.outer(a, b))

    def test_vec_mat(self):
        @repro.program
        def prog(x: repro.float64[N], A: repro.float64[N, M],
                 y: repro.float64[M]):
            y[:] = x @ A

        rng = np.random.default_rng(0)
        x, A = rng.random(3), rng.random((3, 4))
        y = np.zeros(4)
        prog(x=x, A=A, y=y)
        assert np.allclose(y, x @ A)


class TestCastsAndBuiltins:
    def test_astype(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.int64[N]):
            B[:] = A.astype(np.int64)

        A = np.array([1.7, 2.2, -0.5])
        B = np.zeros(3, dtype=np.int64)
        prog(A=A, B=B)
        assert np.array_equal(B, A.astype(np.int64))

    def test_len(self):
        @repro.program
        def prog(A: repro.float64[N]):
            return len(A) * 1.0

        assert prog(A=np.zeros(7)) == 7.0

    def test_builtin_min_max_scalars(self):
        @repro.program
        def prog(A: repro.float64[N]):
            a = A[0]
            b = A[1]
            return max(a, b) - min(a, b)

        assert prog(A=np.array([3.0, 8.0])) == pytest.approx(5.0)

    def test_copy_method(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            snapshot = A.copy()
            A += 100.0
            B[:] = snapshot

        A = np.arange(3, dtype=np.float64)
        B = np.zeros(3)
        prog(A=A, B=B)
        assert np.allclose(B, [0, 1, 2])
