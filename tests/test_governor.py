"""Tests for the execution governor (DESIGN.md §12): budgets with deadlines
and cooperative cancellation, static memory admission control with
degrade-to-serial, per-program circuit breakers, and the governed sweep."""

import json
import threading
import time

import numpy as np
import pytest

import repro
import repro.dtypes as dt
from repro import (Budget, CircuitOpenError, ExecutionTimeout,
                   MemoryBudgetExceeded)
from repro.config import Config
from repro.governor import admission
from repro.governor.breaker import registry, reset_breakers
from repro.governor.budget import (ArmedBudget, ExecutionCancelled, adopt,
                                   armed, current, tick)
from repro.instrumentation import profile
from repro.ir.memlet import Memlet
from repro.ir.nodes import MapEntry, ScheduleType
from repro.ir.sdfg import SDFG
from repro.runtime import parallel
from repro.runtime.executor import run_sdfg
from repro.symbolic import Range

N = repro.symbol("N")


@pytest.fixture(autouse=True)
def _fresh_governor_state():
    reset_breakers()
    yield
    reset_breakers()
    parallel.shutdown_pool()
    parallel.reset_stats()


@repro.program
def incr(A: repro.float64[N]):
    for i in repro.map[0:N]:
        A[i] = A[i] + 1.0


@repro.program
def slow_loop(A: repro.float64[N], T: repro.int64):
    for t in range(T):
        for i in repro.map[0:N]:
            A[i] = A[i] + 0.5


def wcr_multicore_sdfg(n=400):
    """out[0] = sum(A) through a CPU_Multicore map (priced per-chunk
    accumulators on the parallel tier, none on the serial one)."""
    sdfg = SDFG("red")
    sdfg.add_array("A", (n,), dt.float64)
    sdfg.add_array("out", (1,), dt.float64)
    st = sdfg.add_state("s")
    st.add_mapped_tasklet(
        "red", {"i": (0, n - 1, 1)},
        {"a": Memlet("A", Range.from_string("i"))}, "o = a",
        {"o": Memlet("out", Range.from_string("0"), wcr="sum")})
    for state in sdfg.states():
        scope = state.scope_dict()
        for node in state.nodes():
            if isinstance(node, MapEntry) and scope.get(node) is None:
                node.map.schedule = ScheduleType.CPU_Multicore
    return sdfg


# ---------------------------------------------------------------------------
# Budget and ArmedBudget semantics
# ---------------------------------------------------------------------------

class TestBudget:
    def test_nonpositive_bounds_are_null(self):
        assert Budget().is_null
        assert Budget(deadline_s=0, max_bytes=0).is_null
        assert Budget(deadline_s=-1.0, max_bytes=-5).is_null
        assert not Budget(deadline_s=1.0).is_null
        assert not Budget(max_bytes=1).is_null

    def test_resolve_prefers_explicit_over_config(self):
        with Config.override(governor__deadline_s=9.0):
            assert Budget.resolve(Budget(deadline_s=2.0)).deadline_s == 2.0
            assert Budget.resolve(None).deadline_s == 9.0
        assert Budget.resolve(None).is_null  # defaults are off

    def test_per_rank_divides_memory_shares_deadline(self):
        b = Budget(deadline_s=4.0, max_bytes=1000).per_rank(4)
        assert b.deadline_s == 4.0 and b.max_bytes == 250
        assert Budget(deadline_s=4.0).per_rank(4).max_bytes is None

    def test_armed_null_budget_yields_none(self):
        with armed(None) as a:
            assert a is None and current() is None
        with armed(Budget()) as a:
            assert a is None and current() is None

    def test_armed_sets_and_restores_thread_local(self):
        assert current() is None
        with armed(Budget(deadline_s=60.0), program="p") as a:
            assert current() is a and a.program == "p"
            with armed(Budget(deadline_s=30.0), program="inner") as b:
                assert current() is b
            assert current() is a  # nesting restores
        assert current() is None

    def test_boundary_promotes_then_checks(self):
        a = ArmedBudget(Budget(deadline_s=60.0), program="p")
        a.boundary("s0")
        assert a.last_state is None       # s0 only *entered*
        a.boundary("s1")
        assert a.last_state == "s0"       # now s0 has completed

    def test_expired_deadline_raises_at_tick(self):
        with armed(Budget(deadline_s=0.01), program="p") as a:
            a.boundary("s0")
            time.sleep(0.03)
            with pytest.raises(ExecutionTimeout) as ei:
                tick()
        err = ei.value
        assert err.program == "p" and err.deadline_s == 0.01
        assert err.elapsed_s >= 0.01
        json.dumps(err.to_dict())         # structured payload serializes

    def test_cancel_raises_at_next_boundary(self):
        with armed(Budget(deadline_s=60.0), program="p") as a:
            a.boundary("s0")
            a.boundary("s1")
            a.cancel("operator request")
            with pytest.raises(ExecutionCancelled) as ei:
                a.boundary("s2")
        assert ei.value.reason == "operator request"
        assert ei.value.last_state == "s1"

    def test_adopt_carries_budget_across_threads(self):
        hit = []

        with armed(Budget(deadline_s=0.01), program="p") as a:
            time.sleep(0.03)

            def worker():
                assert current() is None  # fresh thread: nothing armed
                with adopt(a):
                    try:
                        tick()
                    except ExecutionTimeout:
                        hit.append(True)
                assert current() is None

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert hit == [True]

    def test_watchdog_flips_expired_without_a_tick(self):
        with armed(Budget(deadline_s=0.02), program="p") as a:
            deadline = time.monotonic() + 2.0
            while not a.expired:
                assert time.monotonic() < deadline, "watchdog never fired"
                time.sleep(0.005)


# ---------------------------------------------------------------------------
# deadlines end to end (acceptance criterion: both backends, 2x bound,
# last-completed state named)
# ---------------------------------------------------------------------------

class TestDeadlineEnforcement:
    DEADLINE = 0.25

    def test_compiled_timeout_within_bound_names_state(self):
        A = np.zeros(2000)
        slow_loop(A, 3)  # warm the compile caches outside the timed window
        start = time.perf_counter()
        with pytest.raises(ExecutionTimeout) as ei:
            slow_loop(A, 2_000_000, __budget=Budget(deadline_s=self.DEADLINE))
        elapsed = time.perf_counter() - start
        assert elapsed < 2 * self.DEADLINE + 0.25, elapsed
        assert ei.value.last_state is not None
        assert ei.value.program == "slow_loop"

    def test_interpreter_timeout_within_bound_names_state(self):
        A = np.zeros(2000)
        sdfg = slow_loop.to_sdfg()
        start = time.perf_counter()
        with pytest.raises(ExecutionTimeout) as ei:
            run_sdfg(sdfg, A=A, T=2_000_000,
                     budget=Budget(deadline_s=self.DEADLINE))
        elapsed = time.perf_counter() - start
        assert elapsed < 2 * self.DEADLINE + 0.25, elapsed
        assert ei.value.last_state is not None

    def test_config_budget_governs_ambiently(self):
        A = np.zeros(2000)
        slow_loop(A, 3)
        with Config.override(governor__deadline_s=0.05):
            with pytest.raises(ExecutionTimeout):
                slow_loop(A, 2_000_000)

    def test_timeout_is_a_terminal_failure_not_degraded(self):
        # the degrade chain must re-raise GovernorError instead of retrying
        # the timed-out run on a slower tier
        A = np.zeros(2000)
        slow_loop(A, 3)
        with Config.override(resilience__mode="degrade"):
            with pytest.raises(ExecutionTimeout):
                slow_loop(A, 2_000_000, __budget=Budget(deadline_s=0.1))
        recs = [r for r in slow_loop.failure_report.records
                if r.kind == "governor"]
        assert recs and recs[-1].action == "terminal-failure"

    def test_parallel_chunks_check_the_adopted_budget(self):
        def body(lo, hi, acc):
            pass

        with Config.override(device__cpu_threads=2, parallel__min_work=0):
            with armed(Budget(deadline_s=0.01), program="par"):
                time.sleep(0.03)
                with pytest.raises(ExecutionTimeout):
                    parallel.parallel_map(body, 0, 99, 1, 10**9, {})

    def test_timeout_emits_governor_instrumentation(self):
        with profile("t") as prof:
            with armed(Budget(deadline_s=0.01), program="p") as a:
                time.sleep(0.03)
                with pytest.raises(ExecutionTimeout):
                    a.check()
        assert prof.report().get("governor", "timeout:p") is not None

    def test_generous_budget_completes_and_is_correct(self):
        A = np.zeros(64)
        incr(A, __budget=Budget(deadline_s=60.0, max_bytes=1 << 30))
        np.testing.assert_array_equal(A, np.ones(64))


# ---------------------------------------------------------------------------
# memory admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_plan_prices_arguments_and_transients(self):
        sdfg = SDFG("planned")
        sdfg.add_array("A", (N,), dt.float64)
        sdfg.add_array("tmp", (N,), dt.float64, transient=True)
        sdfg.add_state("s")
        plan = admission.plan_memory(sdfg, {"N": 100}, threads=1)
        by_name = {i.name: i for i in plan.items}
        assert by_name["A"].kind == "argument" and by_name["A"].bytes == 800
        assert by_name["tmp"].kind == "transient" and by_name["tmp"].bytes == 800
        assert plan.peak_bytes == 1600

    def test_unevaluated_shapes_are_itemized_not_dropped(self):
        sdfg = SDFG("unbound")
        sdfg.add_array("A", (N,), dt.float64)
        sdfg.add_state("s")
        plan = admission.plan_memory(sdfg, {}, threads=1)  # N unbound
        (item,) = plan.items
        assert item.bytes == 0 and "unevaluated" in item.note

    def test_multicore_wcr_accumulators_priced_per_thread(self):
        sdfg = wcr_multicore_sdfg(400)
        plan4 = admission.plan_memory(sdfg, {}, threads=4)
        accums = plan4.by_kind("wcr-accumulator")
        assert len(accums) == 1 and accums[0].bytes == 8 * 4
        plan1 = admission.plan_memory(sdfg, {}, threads=1)
        assert not plan1.by_kind("wcr-accumulator")
        assert plan4.peak_bytes == plan1.peak_bytes + 32

    def test_rejection_is_itemized(self):
        A = np.zeros(64)
        with pytest.raises(MemoryBudgetExceeded) as ei:
            incr(A, __budget=Budget(max_bytes=8))
        err = ei.value
        assert "exceeds governor budget of 8 bytes" in str(err)
        assert any(i.name == "A" and i.bytes == 512 for i in err.plan.items)
        json.dumps(err.to_dict())
        np.testing.assert_array_equal(A, np.zeros(64))  # rejected untouched

    def test_degrade_to_serial_when_only_that_tier_fits(self):
        sdfg = wcr_multicore_sdfg(400)
        serial_peak = admission.plan_memory(sdfg, {}, threads=1).peak_bytes
        with Config.override(device__cpu_threads=4):
            decision = admission.admit(sdfg, {},
                                       Budget(max_bytes=serial_peak))
        assert decision.action == "degrade-serial"
        assert decision.plan.threads == 1
        assert decision.rejected is not None
        assert decision.rejected.peak_bytes > serial_peak

    def test_strict_mode_rejects_instead_of_degrading(self):
        sdfg = wcr_multicore_sdfg(400)
        serial_peak = admission.plan_memory(sdfg, {}, threads=1).peak_bytes
        with Config.override(device__cpu_threads=4,
                             governor__admission="strict"):
            with pytest.raises(MemoryBudgetExceeded):
                admission.admit(sdfg, {}, Budget(max_bytes=serial_peak))

    def test_run_sdfg_degrades_and_stays_correct(self):
        sdfg = wcr_multicore_sdfg(400)
        serial_peak = admission.plan_memory(sdfg, {}, threads=1).peak_bytes
        A = np.random.default_rng(0).random(400)
        out = np.zeros(1)
        parallel.reset_stats()
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            with profile("deg") as prof:
                run_sdfg(sdfg, A=A, out=out,
                         budget=Budget(max_bytes=serial_peak))
        np.testing.assert_allclose(out[0], A.sum())
        assert parallel.stats().parallel_regions == 0  # ran on the serial tier
        events = prof.report().by_category("governor")
        assert any(e.name.startswith("degrade-serial:") for e in events)

    def test_run_sdfg_rejects_oversized_program(self):
        sdfg = wcr_multicore_sdfg(400)
        A = np.zeros(400)
        out = np.zeros(1)
        with pytest.raises(MemoryBudgetExceeded):
            run_sdfg(sdfg, A=A, out=out, budget=Budget(max_bytes=16))


# ---------------------------------------------------------------------------
# circuit breakers
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def _trip(self, A, times=3):
        for _ in range(times):
            with pytest.raises(MemoryBudgetExceeded):
                incr(A, __budget=Budget(max_bytes=8))

    def test_three_failures_open_fast_fail_then_recover(self):
        A = np.zeros(64)
        with Config.override(governor__breaker_threshold=3,
                             governor__cooldown_s=0.1):
            self._trip(A)
            # open: even a generous budget fast-fails with cached history
            with pytest.raises(CircuitOpenError) as ei:
                incr(A, __budget=Budget(max_bytes=1 << 30))
            assert ei.value.failures == 3
            assert len(ei.value.history) == 3
            assert "MemoryBudgetExceeded" in ei.value.history[-1]["error"]
            time.sleep(0.12)
            # half-open probe succeeds and closes the circuit
            incr(A, __budget=Budget(max_bytes=1 << 30))
            (st,) = registry().circuits()
            assert st["state"] == "closed" and st["failures"] == 0

    def test_fast_fail_skips_compilation(self):
        A = np.zeros(64)
        with Config.override(governor__breaker_threshold=3,
                             governor__cooldown_s=60.0):
            self._trip(A)
            compiles = []
            orig = incr.compile
            incr.compile = lambda *a, **k: (compiles.append(1),
                                            orig(*a, **k))[1]
            try:
                with pytest.raises(CircuitOpenError):
                    incr(A, __budget=Budget(deadline_s=60.0,
                                            max_bytes=1 << 30))
            finally:
                del incr.compile
            assert compiles == []  # no re-parse, no recompile

    def test_fast_fails_do_not_count_as_failures(self):
        A = np.zeros(64)
        with Config.override(governor__breaker_threshold=3,
                             governor__cooldown_s=60.0):
            self._trip(A)
            for _ in range(2):
                with pytest.raises(CircuitOpenError):
                    incr(A, __budget=Budget(max_bytes=1 << 30))
            (st,) = registry().circuits()
            assert st["failures"] == 3  # unchanged by the fast-fails

    def test_half_open_failure_reopens(self):
        A = np.zeros(64)
        with Config.override(governor__breaker_threshold=3,
                             governor__cooldown_s=0.05):
            self._trip(A)
            time.sleep(0.06)
            # the probe itself fails -> straight back to open
            with pytest.raises(MemoryBudgetExceeded):
                incr(A, __budget=Budget(max_bytes=8))
            (st,) = registry().circuits()
            assert st["state"] == "open" and st["opens"] == 2

    def test_ungoverned_calls_bypass_the_breaker(self):
        A = np.zeros(64)
        with Config.override(governor__breaker_threshold=3,
                             governor__cooldown_s=60.0):
            self._trip(A)
            incr(A)  # no budget: flows, and correctness is preserved
        np.testing.assert_array_equal(A, np.ones(64))

    def test_transitions_emit_instrumentation(self):
        A = np.zeros(64)
        with Config.override(governor__breaker_threshold=2,
                             governor__cooldown_s=0.05):
            with profile("brk") as prof:
                self._trip(A, times=2)
                with pytest.raises(CircuitOpenError):
                    incr(A, __budget=Budget(max_bytes=1 << 30))
                time.sleep(0.06)
                incr(A, __budget=Budget(max_bytes=1 << 30))
        names = [e.name for e in prof.report().by_category("governor")]
        for prefix in ("breaker-open:", "breaker-fast-fail:",
                       "breaker-probe:", "breaker-close:"):
            assert any(n.startswith(prefix) for n in names), (prefix, names)


# ---------------------------------------------------------------------------
# zero overhead when off: the governed module is a separate cache variant
# ---------------------------------------------------------------------------

class TestGovernedCodegen:
    def test_plain_module_has_no_tick(self):
        compiled = incr.compile(np.zeros(64))
        assert not compiled.governed
        assert "__tick" not in compiled.source

    def test_governed_module_ticks_at_state_boundaries(self):
        compiled = incr.compile(np.zeros(64), govern=True)
        assert compiled.governed
        assert "__tick(__state)" in compiled.source

    def test_cache_keys_differ_by_govern_flag(self):
        from repro.cache.fingerprint import cache_key

        sdfg = incr.to_sdfg()
        assert cache_key(sdfg, govern=True) != cache_key(sdfg, govern=False)

    def test_governed_variant_is_correct(self):
        A = np.zeros(64)
        compiled = incr.compile(A, govern=True)
        compiled(A=A)  # no budget armed: ticks no-op
        np.testing.assert_array_equal(A, np.ones(64))


# ---------------------------------------------------------------------------
# the sweep CLI surface
# ---------------------------------------------------------------------------

class TestGovernorSweep:
    def test_single_case_sweep_is_fully_structured(self, tmp_path):
        from repro.governor.sweep import governor_sweep

        out = str(tmp_path / "GOVERNOR.json")
        report = governor_sweep(case_names=["gemm"], out=out, verbose=False)
        assert report["schema"] == "repro-governor/1"
        summary = report["summary"]
        assert summary["programs"] == 1 and summary["trials"] == 3
        assert summary["failed"] == 0 and summary["unstructured"] == 0
        assert summary["breaker_demo_ok"]
        with open(out) as fh:
            assert json.load(fh)["summary"] == summary

    def test_cli_exit_code(self, tmp_path):
        from repro.governor.__main__ import main

        out = str(tmp_path / "GOVERNOR.json")
        assert main(["sweep", "--cases", "gemm", "--out", out, "-q"]) == 0
