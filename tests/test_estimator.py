"""Validation of the Fig. 12 weak-scaling estimator (S12-S15).

The estimator's communication terms use the same LogGP model as the
functional simulator, so at small rank counts the modeled time must track
the virtual clocks of a real (thread-simulated) execution of the same
pattern.
"""

import numpy as np
import pytest

import repro
from repro.bench.distributed_suite import TABLE2, scaled_sizes
from repro.distributed import run_distributed
from repro.distributed.estimator import FRAMEWORKS, estimate, weak_scaling_series
from repro.simmpi.grid import balanced_dims
from repro.transformations.distributed import (DistributeElementWiseArrayOp,
                                               RemoveRedundantComm)


class TestTable2:
    def test_row_count_and_names(self):
        assert len(TABLE2) == 11
        assert set(TABLE2) == {"atax", "bicg", "doitgen", "gemm", "gemver",
                               "gesummv", "jacobi_1d", "jacobi_2d", "k2mm",
                               "k3mm", "mvt"}

    def test_dask_sizes_halved(self):
        assert TABLE2["gemm"].dask_sizes == (4000, 4600, 2600)
        assert TABLE2["atax"].dask_sizes == (10000, 12500)

    def test_scaling_factor_growth(self):
        s1 = scaled_sizes(TABLE2["gemm"], 1)
        s8 = scaled_sizes(TABLE2["gemm"], 8)
        assert s8["NI"] == pytest.approx(2 * s1["NI"], rel=0.1)

    def test_fixed_dimensions(self):
        s1 = scaled_sizes(TABLE2["jacobi_1d"], 1)
        s16 = scaled_sizes(TABLE2["jacobi_1d"], 16)
        assert s16["T"] == s1["T"]
        assert s16["N"] == pytest.approx(16 * s1["N"], rel=0.1)

    def test_grid_alignment(self):
        for procs in (2, 6, 36, 144):
            grid = balanced_dims(procs)
            sizes = scaled_sizes(TABLE2["jacobi_2d"], procs)
            assert sizes["N"] % (grid[0] * grid[1]) == 0


class TestEstimatorShapes:
    PROCS = [1, 2, 4, 16, 64, 256, 1296]

    def test_doitgen_embarrassing(self):
        series = weak_scaling_series("doitgen", self.PROCS, "dace")
        assert series[1] / series[1296] > 0.95

    def test_matvec_class(self):
        for kernel in ("atax", "bicg", "gemver", "gesummv", "mvt"):
            series = weak_scaling_series(kernel, self.PROCS, "dace")
            eff = series[1] / series[1296]
            assert eff > 0.55, kernel      # paper: stays above 60%

    def test_matmul_class_lowest(self):
        gemm_eff = {p: estimate("gemm", 1) / estimate("gemm", p)
                    for p in self.PROCS}
        mvt_eff = {p: estimate("mvt", 1) / estimate("mvt", p)
                   for p in self.PROCS}
        assert gemm_eff[1296] < mvt_eff[1296]

    def test_stencils_between_classes(self):
        j2d = estimate("jacobi_2d", 1) / estimate("jacobi_2d", 1296)
        gemm = estimate("gemm", 1) / estimate("gemm", 1296)
        assert gemm < j2d < 1.0

    def test_dask_oom_regime(self):
        assert estimate("gemm", 512, "dask") is None
        assert estimate("gemm", 256, "dask") is not None

    def test_dace_fastest_at_scale(self):
        for kernel in TABLE2:
            for other in ("dask", "legate"):
                t_dace = estimate(kernel, 64, "dace")
                t_other = estimate(kernel, 64, other)
                assert t_dace < t_other, (kernel, other)

    def test_dask_slower_single_node(self):
        """The paper observes Dask over 30x slower on equal problem sizes;
        on its halved sizes it is still several times slower."""
        for kernel in ("gemm", "mvt"):
            assert estimate(kernel, 1, "dask") > 1.5 * estimate(kernel, 1, "dace")

    def test_legate_matches_dace_on_blas_single_node(self):
        t_dace = estimate("gemm", 1, "dace")
        t_legate = estimate("gemm", 1, "legate")
        assert t_legate / t_dace < 1.6  # "matches the runtime ... on one CPU"


class TestEstimatorVsFunctional:
    """The comm terms must agree with the functional simulator's virtual
    clocks within a small factor (same LogGP model, simplified schedule)."""

    def test_gemm_comm_within_factor(self):
        NI = repro.symbol("NI")
        NJ = repro.symbol("NJ")
        NK = repro.symbol("NK")

        @repro.program
        def gemm(alpha: repro.float64, beta: repro.float64,
                 C: repro.float64[NI, NJ], A: repro.float64[NI, NK],
                 B: repro.float64[NK, NJ]):
            C[:] = alpha * A @ B + beta * C

        sdfg = gemm.to_sdfg().clone()
        sdfg.apply(DistributeElementWiseArrayOp)
        sdfg.expand_library_nodes(implementation="PBLAS")
        sdfg.apply(RemoveRedundantComm)

        procs = 4
        rng = np.random.default_rng(0)
        M = K = N = 64
        result = run_distributed(sdfg, procs, alpha=1.0, beta=1.0,
                                 C=rng.random((M, N)), A=rng.random((M, K)),
                                 B=rng.random((K, N)))
        functional = result.modeled_time
        # rebuild the estimator's communication term at the same size
        from repro.distributed.estimator import _comm_time
        from repro.simmpi.netmodel import NetModel

        modeled = _comm_time(TABLE2["gemm"],
                             {"NI": M, "NJ": N, "NK": K}, procs,
                             NetModel.from_config())
        assert functional > 0 and modeled > 0
        ratio = functional / modeled
        assert 0.05 < ratio < 20.0  # same order of magnitude
