"""Unit and property tests for the symbolic expression algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (Add, Expr, FloorDiv, Integer, Max, Min, Mod, Mul,
                            Symbol, definitely_eq, definitely_le,
                            definitely_lt, simplify, sympify)

N = Symbol("N")
M = Symbol("M")
P = Symbol("P", positive=True)


class TestConstruction:
    def test_sympify_int(self):
        assert sympify(5) == Integer(5)

    def test_sympify_expr_identity(self):
        assert sympify(N) is N

    def test_sympify_numpy_int(self):
        assert sympify(np.int64(7)) == Integer(7)

    def test_sympify_rejects_bool(self):
        with pytest.raises(TypeError):
            sympify(True)

    def test_sympify_rejects_float(self):
        with pytest.raises(TypeError):
            sympify(1.5)

    def test_symbol_requires_name(self):
        with pytest.raises(ValueError):
            Symbol("")

    def test_integer_requires_int(self):
        with pytest.raises(TypeError):
            Integer(1.5)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            N.name = "other"
        with pytest.raises(AttributeError):
            Integer(3).value = 4


class TestArithmetic:
    def test_add_constants(self):
        assert Integer(2) + 3 == Integer(5)

    def test_collect_terms(self):
        assert N + N == 2 * N

    def test_cancel_terms(self):
        assert (N + 3) - N == Integer(3)

    def test_subtraction_to_zero(self):
        assert N - N == Integer(0)

    def test_distribution(self):
        assert (N + 1) * 2 == 2 * N + 2

    def test_product_of_sums(self):
        expr = (N + 1) * (M + 2)
        assert expr == N * M + 2 * N + M + 2

    def test_mul_by_zero(self):
        assert N * 0 == Integer(0)

    def test_power(self):
        assert N ** 2 == N * N

    def test_negation(self):
        assert -(N - M) == M - N

    def test_floordiv_by_one(self):
        assert (N // 1) == N

    def test_floordiv_constant_fold(self):
        assert Integer(7) // 2 == Integer(3)

    def test_floordiv_exact_polynomial(self):
        assert (2 * N + 4) // 2 == N + 2

    def test_floordiv_inexact_stays_opaque(self):
        expr = (N + 1) // 2
        assert isinstance(expr, FloorDiv)

    def test_floordiv_self(self):
        assert N // N == Integer(1)

    def test_floordiv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            N // 0

    def test_mod_by_one(self):
        assert N % 1 == Integer(0)

    def test_mod_self(self):
        assert N % N == Integer(0)

    def test_mod_constant_fold(self):
        assert Integer(7) % 3 == Integer(1)


class TestMinMax:
    def test_min_constants(self):
        assert Min.make(3, 5) == Integer(3)

    def test_max_constants(self):
        assert Max.make(3, 5) == Integer(5)

    def test_min_dedup(self):
        assert Min.make(N, N) == N

    def test_min_flattening(self):
        inner = Min.make(N, M)
        assert Min.make(inner, 5) == Min.make(N, M, 5)

    def test_minmax_evaluate(self):
        expr = Min.make(N, M) + Max.make(N, M)
        assert expr.evaluate({"N": 3, "M": 8}) == 11


class TestSubstitutionEvaluation:
    def test_subs_by_name(self):
        assert (N + 1).subs({"N": 4}) == Integer(5)

    def test_subs_by_symbol(self):
        assert (N * M).subs({N: 2}) == 2 * M

    def test_subs_with_expr(self):
        assert (N + 1).subs({"N": M * 2}) == 2 * M + 1

    def test_evaluate_missing_symbol(self):
        with pytest.raises(KeyError):
            (N + M).evaluate({"N": 1})

    def test_free_symbols(self):
        assert (N * M + 3).free_symbols == frozenset((N, M))

    def test_deepcopy_is_identity(self):
        import copy

        expr = N * M + 3
        assert copy.deepcopy(expr) is expr


class TestOrderingQueries:
    def test_le_constants(self):
        assert definitely_le(2, 3) is True
        assert definitely_le(3, 2) is False

    def test_le_symbolic_offset(self):
        assert definitely_le(N, N + 1) is True
        assert definitely_le(N + 1, N) is False

    def test_le_unknown(self):
        assert definitely_le(N, M) is None

    def test_lt_strict(self):
        assert definitely_lt(N, N + 1) is True
        assert definitely_lt(N, N) is False

    def test_nonnegative_symbol(self):
        assert N.is_nonnegative() is True
        assert N.is_positive() is None

    def test_positive_symbol(self):
        assert P.is_positive() is True

    def test_signed_symbol(self):
        i = Symbol("i", nonnegative=False)
        assert i.is_nonnegative() is None

    def test_eq_structural(self):
        assert definitely_eq(N + N, 2 * N) is True
        assert definitely_eq(N, N + 1) is False
        assert definitely_eq(N, M) is None

    def test_sum_of_nonneg_positive(self):
        assert (N + 1).is_positive() is True

    def test_product_nonneg(self):
        assert (N * M).is_nonnegative() is True

    def test_negative_coefficient(self):
        assert (-N - 1).is_positive() is False


class TestStringForms:
    def test_str_roundtrip_simple(self):
        assert str(N + 1) == "1 + N"

    def test_str_mul(self):
        assert str(2 * N) == "2*N"

    def test_str_min(self):
        assert str(Min.make(N, M)) in ("Min(M, N)", "Min(N, M)")


# ---------------------------------------------------------------------------
# Property-based tests: the algebra must agree with integer arithmetic
# ---------------------------------------------------------------------------

small_ints = st.integers(min_value=-8, max_value=8)
env_values = st.integers(min_value=0, max_value=20)


def build_expr(coeffs, env):
    """Affine expression sum(c_i * sym_i) + c0."""
    syms = [Symbol(name) for name in env]
    expr: Expr = Integer(coeffs[-1])
    for c, s in zip(coeffs, syms):
        expr = expr + Integer(c) * s
    return expr


@given(a=small_ints, b=small_ints, c=small_ints,
       n=env_values, m=env_values)
@settings(max_examples=60)
def test_affine_evaluation_matches_python(a, b, c, n, m):
    expr = a * N + b * M + c
    if isinstance(expr, Expr):
        assert expr.evaluate({"N": n, "M": m}) == a * n + b * m + c


@given(a=small_ints, b=small_ints, n=env_values, m=env_values)
@settings(max_examples=60)
def test_addition_commutes(a, b, n, m):
    left = (a * N) + (b * M)
    right = (b * M) + (a * N)
    assert left == right


@given(a=small_ints, b=small_ints, c=small_ints,
       n=env_values, m=env_values)
@settings(max_examples=60)
def test_distribution_matches(a, b, c, n, m):
    expr = (a * N + b) * c
    assert expr.evaluate({"N": n, "M": m}) == (a * n + b) * c


@given(x=st.integers(min_value=-50, max_value=50),
       d=st.integers(min_value=1, max_value=9))
@settings(max_examples=60)
def test_floordiv_mod_match_python(x, d):
    fd = Integer(x) // Integer(d)
    md = Integer(x) % Integer(d)
    assert fd == Integer(x // d)
    assert md == Integer(x % d)


@given(n=env_values, m=env_values, k=small_ints)
@settings(max_examples=60)
def test_definitely_le_is_sound(n, m, k):
    """If the engine says a <= b, it must hold for every valuation."""
    a = N + k
    b = N + m
    verdict = definitely_le(a, b)
    concrete_a = n + k
    concrete_b = n + m
    if verdict is True:
        assert concrete_a <= concrete_b
    elif verdict is False:
        assert concrete_a > concrete_b
