"""Tests for the dataflow-coarsening pass (§2.4) and the auto-optimization
transformations (§3.1)."""

import numpy as np
import pytest

import repro
from repro.autoopt import auto_optimize
from repro.codegen import compile_sdfg
from repro.config import Config
from repro.ir import SDFG, InterstateEdge, MapEntry, Memlet, Tasklet
from repro.ir.data import AllocationLifetime, StorageType
from repro.ir.nodes import ScheduleType
from repro.symbolic import Symbol
from repro.transformations.dataflow import (DegenerateMapRemoval,
                                            GreedySubgraphFusion, LoopToMap,
                                            MapCollapse, RedundantReadCopy,
                                            RedundantWriteCopy, StateFusion,
                                            TileWCRMaps,
                                            TransientAllocationMitigation)

N = repro.symbol("N")


def count_maps(sdfg):
    return sum(1 for n, _ in sdfg.all_nodes_recursive()
               if isinstance(n, MapEntry))


class TestStateFusion:
    def test_fuses_chain(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = (A + 1.0) * 2.0

        unfused = prog.to_sdfg(simplify=False)
        before = unfused.number_of_states()
        fused = prog.to_sdfg(simplify=True)
        assert fused.number_of_states() < before

    def test_preserves_war_ordering(self):
        """Write-after-read across fused states must keep NumPy semantics."""
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 2.0     # reads A
            A[:] = B + 1.0     # writes A afterwards

        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        expected_B = A * 2
        expected_A = expected_B + 1
        prog(A=A, B=B)
        assert np.allclose(B, expected_B)
        assert np.allclose(A, expected_A)

    def test_does_not_fuse_conditional_edges(self):
        sdfg = SDFG("cond")
        sdfg.add_scalar("x", repro.float64)
        a = sdfg.add_state()
        b = sdfg.add_state()
        sdfg.add_edge(a, b, InterstateEdge("x > 0"))
        assert StateFusion.apply_repeated(sdfg) == 0

    def test_does_not_fuse_assignments(self):
        sdfg = SDFG("assign")
        a = sdfg.add_state()
        b = sdfg.add_state()
        sdfg.add_edge(a, b, InterstateEdge(assignments={"i": "0"}))
        assert StateFusion.apply_repeated(sdfg) == 0


class TestRedundantCopies:
    def test_slice_reads_composed(self):
        """B[1:-1] = f(A[:-2], A[2:]) must not copy the slices."""
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[1:-1] = A[:-2] + A[2:]

        sdfg = prog.to_sdfg()
        # after coarsening no transient copies remain
        transients = [name for name, desc in sdfg.arrays.items()
                      if desc.transient and not name.startswith("__return")]
        assert not transients
        A = np.arange(6, dtype=np.float64)
        B = np.zeros(6)
        prog(A=A, B=B)
        assert np.allclose(B[1:-1], A[:-2] + A[2:])

    def test_squeezed_row_read(self):
        @repro.program
        def prog(A: repro.float64[N, N], v: repro.float64[N]):
            v[:] = A[0, :] + A[1, :]

        A = np.arange(16, dtype=np.float64).reshape(4, 4)
        v = np.zeros(4)
        prog(A=A, v=v)
        assert np.allclose(v, A[0] + A[1])

    def test_inplace_overlap_preserves_semantics(self):
        """A[1:-1] = f(A[...]) reads the OLD values (NumPy semantics); the
        write-side fold must not break this."""
        @repro.program
        def prog(A: repro.float64[N]):
            A[1:-1] = A[:-2] + A[2:]

        A = np.arange(6, dtype=np.float64)
        expected = A.copy()
        expected[1:-1] = A[:-2] + A[2:]
        prog(A=A)
        assert np.allclose(A, expected)

    def test_return_copy_not_removed(self):
        @repro.program
        def prog(A: repro.float64[N]):
            return np.sum(A)

        assert prog(A=np.ones(4)) == 4.0


class TestLoopToMap:
    def test_parallel_loop_converted(self):
        @repro.program
        def prog(C: repro.float64[N]):
            for i in range(N):
                C[i] += 1.0

        sdfg = prog.to_sdfg().clone()
        assert LoopToMap.apply_once(sdfg)
        C = np.zeros(4)
        compile_sdfg(sdfg)(C=C)
        assert np.allclose(C, 1)

    def test_sequential_loop_preserved(self):
        @repro.program
        def prog(C: repro.float64[N]):
            for i in range(1, N):
                C[i] = C[i - 1] + 1.0

        sdfg = prog.to_sdfg().clone()
        assert not LoopToMap.apply_once(sdfg)

    def test_reduction_loop_preserved(self):
        @repro.program
        def prog(C: repro.float64[N]):
            total = 0.0
            for i in range(N):
                total += C[i]
            return total

        sdfg = prog.to_sdfg().clone()
        assert not LoopToMap.apply_once(sdfg)

    def test_data_dependent_bound_preserved(self):
        @repro.program
        def prog(C: repro.float64[N], k: repro.int64[1]):
            for i in range(k[0]):
                C[i] += 1.0

        sdfg = prog.to_sdfg().clone()
        assert not LoopToMap.apply_once(sdfg)

    def test_row_parallel_loop(self):
        @repro.program
        def prog(A: repro.float64[N, N]):
            for i in range(N):
                A[i, :] = A[i, :] * 2.0

        sdfg = prog.to_sdfg().clone()
        converted = LoopToMap.apply_once(sdfg)
        A = np.ones((3, 3))
        compile_sdfg(sdfg)(A=A)
        assert np.allclose(A, 2)
        assert converted


class TestFusionCollapseTiling:
    def test_elementwise_chain_fuses(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = (A * 2.0 + 1.0) * A

        sdfg = prog.to_sdfg().clone()
        before = count_maps(sdfg)
        GreedySubgraphFusion.apply_repeated(sdfg)
        after = count_maps(sdfg)
        assert after < before
        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        compile_sdfg(sdfg)(A=A, B=B)
        assert np.allclose(B, (A * 2 + 1) * A)

    def test_stencil_chain_not_fused(self):
        """A consumer reading shifted elements cannot fuse per-point."""
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N], C: repro.float64[N]):
            B[:] = A * 2.0
            C[1:-1] = B[:-2] + B[2:]

        sdfg = prog.to_sdfg().clone()
        before = count_maps(sdfg)
        GreedySubgraphFusion.apply_repeated(sdfg)
        assert count_maps(sdfg) == before

    def test_map_collapse(self):
        sdfg = SDFG("nested")
        sdfg.add_array("A", (N, N), repro.float64)
        state = sdfg.add_state()
        outer_entry, outer_exit = state.add_map("outer", ["i"], "0:N")
        inner_entry, inner_exit = state.add_map("inner", ["j"], "0:N")
        tasklet = state.add_tasklet("t", {"__in"}, {"__out"}, "__out = __in + 1")
        read = state.add_read("A")
        write = state.add_write("A")
        outer_entry.add_in_connector("IN_A")
        outer_entry.add_out_connector("OUT_A")
        inner_entry.add_in_connector("IN_A")
        inner_entry.add_out_connector("OUT_A")
        inner_exit.add_in_connector("IN_A")
        inner_exit.add_out_connector("OUT_A")
        outer_exit.add_in_connector("IN_A")
        outer_exit.add_out_connector("OUT_A")
        state.add_edge(read, None, outer_entry, "IN_A", Memlet("A", "0:N, 0:N"))
        state.add_edge(outer_entry, "OUT_A", inner_entry, "IN_A",
                       Memlet("A", "i, 0:N"))
        state.add_edge(inner_entry, "OUT_A", tasklet, "__in", Memlet("A", "i, j"))
        state.add_edge(tasklet, "__out", inner_exit, "IN_A", Memlet("A", "i, j"))
        state.add_edge(inner_exit, "OUT_A", outer_exit, "IN_A",
                       Memlet("A", "i, 0:N"))
        state.add_edge(outer_exit, "OUT_A", write, None, Memlet("A", "0:N, 0:N"))
        sdfg.validate()
        assert MapCollapse.apply_once(sdfg)
        entries = [n for n, _ in sdfg.all_nodes_recursive()
                   if isinstance(n, MapEntry)]
        assert len(entries) == 1
        assert len(entries[0].map.params) == 2
        A = np.zeros((3, 3))
        compile_sdfg(sdfg)(A=A)
        assert np.allclose(A, 1)

    def test_tile_wcr_maps(self):
        @repro.program
        def prog(A: repro.float64[N]):
            return np.sum(A)

        sdfg = prog.to_sdfg().clone()
        sdfg.expand_library_nodes(implementation="native")
        with Config.override(optimizer__tile_size=16):
            TileWCRMaps.apply_repeated(sdfg)
        tiled = [n for n, _ in sdfg.all_nodes_recursive()
                 if isinstance(n, MapEntry) and n.map.tile_sizes]
        assert tiled
        assert tiled[0].map.tile_sizes == (16,)


class TestTransientAllocation:
    def test_small_array_to_stack(self):
        sdfg = SDFG("stack")
        sdfg.add_transient("tiny", (8,), repro.float64)
        state = sdfg.add_state()
        state.add_access("tiny")
        TransientAllocationMitigation.apply_repeated(sdfg)
        assert sdfg.arrays["tiny"].storage is StorageType.CPU_Stack

    def test_input_sized_becomes_persistent(self):
        sdfg = SDFG("persist")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_transient("tmp", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_access("tmp")
        TransientAllocationMitigation.apply_repeated(sdfg)
        assert sdfg.arrays["tmp"].lifetime is AllocationLifetime.Persistent


class TestAutoOptimize:
    def test_cpu_schedules(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A + 1.0

        sdfg = prog.to_sdfg().clone()
        auto_optimize(sdfg, device="CPU")
        entries = [n for n, _ in sdfg.all_nodes_recursive()
                   if isinstance(n, MapEntry)]
        assert all(e.map.schedule is ScheduleType.CPU_Multicore for e in entries)

    def test_gpu_schedules_and_storage(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = (A + 1.0) * 2.0

        sdfg = prog.to_sdfg().clone()
        auto_optimize(sdfg, device="GPU")
        entries = [n for n, _ in sdfg.all_nodes_recursive()
                   if isinstance(n, MapEntry)]
        assert all(e.map.schedule is ScheduleType.GPU_Device for e in entries)

    def test_fpga_streaming_composition(self):
        """A producer/consumer pair reading in write order becomes a stream."""
        @repro.program
        def prog(A: repro.float64[N], C: repro.float64[N]):
            B = A * 2.0
            C[:] = B + 1.0

        sdfg = prog.to_sdfg().clone()
        auto_optimize(sdfg, device="FPGA", passes={"fusion": False})
        streamed = [name for name, desc in sdfg.arrays.items()
                    if getattr(desc, "fpga_streamed", False)]
        assert streamed

    def test_pass_ablation_flags(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = (A * 2.0 + 1.0) * A

        fused = prog.to_sdfg().clone()
        auto_optimize(fused, device="CPU")
        unfused = prog.to_sdfg().clone()
        auto_optimize(unfused, device="CPU", passes={"fusion": False})
        assert count_maps(fused) < count_maps(unfused)

    def test_unknown_device_rejected(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0

        with pytest.raises(ValueError):
            auto_optimize(prog.to_sdfg().clone(), device="TPU")

    def test_optimized_results_match_reference(self):
        @repro.program
        def prog(TSTEPS: repro.int32, A: repro.float64[N], B: repro.float64[N]):
            for t in range(1, TSTEPS):
                B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
                A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])

        for device in ("CPU", "GPU", "FPGA"):
            sdfg = prog.to_sdfg().clone()
            auto_optimize(sdfg, device=device)
            rng = np.random.default_rng(3)
            A = rng.random(20)
            B = rng.random(20)
            Ar, Br = A.copy(), B.copy()
            for t in range(1, 5):
                Br[1:-1] = 0.33333 * (Ar[:-2] + Ar[1:-1] + Ar[2:])
                Ar[1:-1] = 0.33333 * (Br[:-2] + Br[1:-1] + Br[2:])
            compile_sdfg(sdfg)(TSTEPS=5, A=A, B=B)
            assert np.allclose(A, Ar), device


class TestDegenerateMaps:
    def test_size_one_map_removed(self):
        sdfg = SDFG("degen")
        sdfg.add_array("A", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("m", {"i": "3:4"},
                                 {"__in": Memlet("A", "i")},
                                 "__out = __in + 1",
                                 {"__out": Memlet("A", "i")})
        assert DegenerateMapRemoval.apply_once(sdfg)
        assert count_maps(sdfg) == 0
        A = np.zeros(6)
        compile_sdfg(sdfg)(A=A)
        assert A[3] == 1.0 and A[0] == 0.0


class TestInlineNestedSDFG:
    def test_single_state_callee_inlined(self):
        from repro.ir import NestedSDFG

        @repro.program
        def callee(X: repro.float64[N]):
            X[:] = X * 2.0 + 1.0

        @repro.program
        def caller(A: repro.float64[N]):
            callee(A)

        sdfg = caller.to_sdfg()
        nested = [n for n, _ in sdfg.all_nodes_recursive()
                  if isinstance(n, NestedSDFG)]
        assert not nested, "single-state callee should inline during simplify"
        A = np.arange(4, dtype=np.float64)
        compile_sdfg(sdfg)(A=A)
        assert np.allclose(A, np.arange(4) * 2 + 1)

    def test_inlined_callee_fuses_with_caller(self):
        from repro.ir import MapEntry

        @repro.program
        def scale(X: repro.float64[N]):
            X *= 2.0

        @repro.program
        def caller(A: repro.float64[N], B: repro.float64[N]):
            scale(A)
            B[:] = A + 1.0

        sdfg = caller.to_sdfg().clone()
        auto_optimize(sdfg, device="CPU")
        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        compile_sdfg(sdfg)(A=A, B=B)
        assert np.allclose(A, np.arange(4) * 2)
        assert np.allclose(B, A + 1)

    def test_multi_state_callee_stays_nested(self):
        from repro.ir import NestedSDFG

        @repro.program
        def loopy(X: repro.float64[N], T: repro.int32):
            for t in range(T):
                X[0] += 1.0   # sequential: keeps multiple states

        @repro.program
        def caller(A: repro.float64[N]):
            loopy(A, 3)

        sdfg = caller.to_sdfg()
        nested = [n for n, _ in sdfg.all_nodes_recursive()
                  if isinstance(n, NestedSDFG)]
        assert nested, "multi-state callee must remain a nested SDFG"
        A = np.zeros(4)
        compile_sdfg(sdfg)(A=A)
        assert A[0] == 3.0

    def test_inline_transient_renamed(self):
        @repro.program
        def callee(X: repro.float64[N], Y: repro.float64[N]):
            tmp = X * 3.0
            Y[:] = tmp + 1.0

        @repro.program
        def caller(A: repro.float64[N], B: repro.float64[N]):
            callee(A, B)

        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        caller(A=A, B=B)
        assert np.allclose(B, A * 3 + 1)
