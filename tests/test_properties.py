"""Property-based invariants across the whole pipeline.

The three executions of any supported program — NumPy semantics, the
reference interpreter, and the generated module (optimized and not) — must
agree up to floating-point tolerance, for randomized stencil offsets, slice
bounds, and coefficients.  Shape/offset parameters enter as SDFG *symbols*,
so a single parsed program covers the whole family (the paper's symbolic
sizes at work).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.autoopt import auto_optimize
from repro.codegen import compile_sdfg
from repro.runtime.executor import run_sdfg

N = repro.symbol("N")
M = repro.symbol("M")
LO = repro.symbol("lo")
DL = repro.symbol("dl")
DR = repro.symbol("dr")


@repro.program
def stencil_prog(A: repro.float64[N], B: repro.float64[N], c: repro.float64):
    B[lo:N - lo] = (A[lo - dl:N - lo - dl] + A[lo + dr:N - lo + dr]) * c


# resolve the symbol names used inside the program body
lo, dl, dr = LO, DL, DR


@repro.program
def chain_prog(A: repro.float64[N, M], B: repro.float64[N, M],
               c0: repro.float64, c1: repro.float64, c2: repro.float64):
    B[:] = ((A + c0) * c1 - c2) * A


@repro.program
def seq_prog(A: repro.float64[N], s: repro.int64):
    for i in range(s + 1, N):
        A[i] = A[i - 1] * 0.5 + A[i]


@repro.program
def reduce_prog(A: repro.float64[N, M], out: repro.float64[3]):
    out[0] = np.sum(A)
    out[1] = np.max(A)
    out[2] = np.min(A)


def _engines(prog):
    sdfg = prog.to_sdfg()
    optimized = sdfg.clone()
    auto_optimize(optimized, device="CPU")
    return [("interp", lambda **kw: run_sdfg(sdfg, **kw)),
            ("codegen", compile_sdfg(sdfg)),
            ("autoopt", compile_sdfg(optimized))]


_STENCIL_ENGINES = None
_CHAIN_ENGINES = None
_SEQ_ENGINES = None
_REDUCE_ENGINES = None


def _get(cache_name, prog):
    value = globals()[cache_name]
    if value is None:
        value = _engines(prog)
        globals()[cache_name] = value
    return value


@given(n=st.integers(10, 30), left=st.integers(0, 3), right=st.integers(0, 3),
       coeff=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
       seed=st.integers(0, 99))
@settings(max_examples=30, deadline=None)
def test_random_stencils_agree(n, left, right, coeff, seed):
    lo_val = max(left, right, 1)
    if n - 2 * lo_val < 2:
        return
    rng = np.random.default_rng(seed)
    A0 = rng.random(n)
    B0 = rng.random(n)

    expected_B = B0.copy()
    expected_B[lo_val:n - lo_val] = (
        A0[lo_val - left:n - lo_val - left]
        + A0[lo_val + right:n - lo_val + right]) * coeff

    for name, engine in _get("_STENCIL_ENGINES", stencil_prog):
        A, B = A0.copy(), B0.copy()
        engine(A=A, B=B, c=coeff, lo=lo_val, dl=left, dr=right)
        assert np.allclose(B, expected_B, rtol=1e-12), name
        assert np.allclose(A, A0), name  # inputs untouched


@given(n=st.integers(3, 14), m=st.integers(3, 14),
       coeffs=st.tuples(*[st.floats(min_value=-3.0, max_value=3.0,
                                    allow_nan=False)] * 3),
       seed=st.integers(0, 99))
@settings(max_examples=30, deadline=None)
def test_elementwise_chain_agrees(n, m, coeffs, seed):
    c0, c1, c2 = coeffs
    rng = np.random.default_rng(seed)
    A0 = rng.random((n, m))
    expected = ((A0 + c0) * c1 - c2) * A0

    for name, engine in _get("_CHAIN_ENGINES", chain_prog):
        A, B = A0.copy(), np.zeros((n, m))
        engine(A=A, B=B, c0=c0, c1=c1, c2=c2)
        assert np.allclose(B, expected, rtol=1e-12), name


@given(n=st.integers(3, 16), start=st.integers(0, 4), seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_sequential_loops_agree(n, start, seed):
    if start >= n - 1:
        return
    rng = np.random.default_rng(seed)
    A0 = rng.random(n)
    expected = A0.copy()
    for i in range(start + 1, n):
        expected[i] = expected[i - 1] * 0.5 + expected[i]

    for name, engine in _get("_SEQ_ENGINES", seq_prog):
        A = A0.copy()
        engine(A=A, s=start)
        assert np.allclose(A, expected, rtol=1e-12), name


@given(rows=st.integers(2, 10), cols=st.integers(2, 10),
       seed=st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_reductions_agree(rows, cols, seed):
    rng = np.random.default_rng(seed)
    A = rng.random((rows, cols))
    expected = np.array([A.sum(), A.max(), A.min()])

    for name, engine in _get("_REDUCE_ENGINES", reduce_prog):
        out = np.zeros(3)
        engine(A=A.copy(), out=out)
        assert np.allclose(out, expected, rtol=1e-12), name
