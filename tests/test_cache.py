"""Tests for the persistent content-addressed compilation cache
(DESIGN.md §9): fingerprint stability, key sensitivity, two-tier
hit/miss/eviction accounting, corruption recovery, concurrent writers, and
the warm-start end-to-end path."""

import json
import os
import threading

import numpy as np
import pytest

import repro
from repro import instrumentation
from repro.cache import (CacheStore, cache_key, cached_compile, fingerprint,
                         reset_stats, stats)
from repro.cache.store import CacheEntry
from repro.config import Config
from repro.ir.serialize import sdfg_from_json

N = repro.symbol("N")


@repro.program
def saxpy(A: repro.float64[N], B: repro.float64[N]):
    for i in repro.map[0:N]:
        B[i] = 2.0 * A[i] + B[i]


@repro.program
def scale(A: repro.float64[N], B: repro.float64[N]):
    for i in repro.map[0:N]:
        B[i] = 3.0 * A[i]


@pytest.fixture
def store(tmp_path):
    reset_stats()
    st = CacheStore(directory=str(tmp_path / "cache"), max_bytes=1 << 20,
                    memory_entries=8)
    yield st
    reset_stats()


def _fresh_sdfg(program=saxpy):
    return program.to_sdfg().clone()


class TestFingerprint:
    def test_stable_across_clone(self):
        sdfg = _fresh_sdfg()
        assert fingerprint(sdfg) == fingerprint(sdfg.clone())

    def test_stable_across_serialize_round_trip(self):
        sdfg = _fresh_sdfg()
        restored = sdfg_from_json(sdfg.to_json())
        assert fingerprint(sdfg) == fingerprint(restored)

    def test_double_round_trip(self):
        sdfg = _fresh_sdfg()
        once = sdfg_from_json(sdfg.to_json())
        twice = sdfg_from_json(once.to_json())
        assert fingerprint(once) == fingerprint(twice)

    def test_different_programs_differ(self):
        assert fingerprint(_fresh_sdfg(saxpy)) != fingerprint(_fresh_sdfg(scale))

    def test_graph_edit_changes_fingerprint(self):
        sdfg = _fresh_sdfg()
        before = fingerprint(sdfg)
        edited = sdfg.clone()
        edited.add_array("extra", (4,), repro.float64, transient=True)
        assert fingerprint(edited) != before


class TestCacheKey:
    def test_key_sensitivity(self):
        sdfg = _fresh_sdfg()
        base = cache_key(sdfg)
        assert cache_key(sdfg, device="GPU") != base
        assert cache_key(sdfg, instrument=True) != base
        assert cache_key(sdfg, sanitize=True) != base
        assert cache_key(sdfg, optimize="CPU") != base
        assert cache_key(sdfg) == base  # deterministic

    def test_key_covers_optimizer_config(self):
        sdfg = _fresh_sdfg()
        base = cache_key(sdfg)
        key = next(k for k in Config.keys() if k.startswith("optimizer."))
        with Config.override(**{key.replace(".", "__"): not Config.get(key)
                                if isinstance(Config.get(key), bool)
                                else 999}):
            assert cache_key(sdfg) != base
        assert cache_key(sdfg) == base


class TestAccounting:
    def test_miss_then_memory_hit_then_disk_hit(self, store):
        sdfg = _fresh_sdfg()
        cold = cached_compile(sdfg, store=store)
        assert stats().misses == 1 and stats().hits == 0
        assert not cold.from_cache
        assert stats().stores == 1  # saxpy has no library nodes: persistable

        warm = cached_compile(_fresh_sdfg(), store=store)
        assert stats().memory_hits == 1
        assert warm is cold  # the memory tier returns the live object

        store.clear_memory()
        disk = cached_compile(_fresh_sdfg(), store=store)
        assert stats().disk_hits == 1
        assert disk.from_cache
        assert disk.codegen_seconds == 0.0 and disk.validate_seconds == 0.0

    def test_disabled_cache_bypasses_store(self, store):
        with Config.override(cache__enabled=False):
            compiled = cached_compile(_fresh_sdfg(), store=store)
        assert not compiled.from_cache
        assert stats().lookups == 0 and store.memory_size == 0

    def test_eviction_to_budget(self, store):
        cached_compile(_fresh_sdfg(saxpy), store=store)
        cached_compile(_fresh_sdfg(scale), store=store)
        assert store.disk_stats()["entries"] == 2
        store.max_bytes = 1  # force everything over budget
        evicted = store.evict_to_budget()
        assert evicted == 2 and stats().evictions == 2
        assert store.disk_stats()["entries"] == 0


class TestCorruptionRecovery:
    def test_corrupt_entry_evicted_and_recompiled(self, store):
        sdfg = _fresh_sdfg()
        cold = cached_compile(sdfg, store=store)
        key = cache_key(sdfg)
        path = store.entry_path(key)
        with open(path, "w") as fh:
            fh.write("{not json")
        store.clear_memory()

        recompiled = cached_compile(_fresh_sdfg(), store=store)
        assert stats().invalidations == 1
        assert stats().misses == 2  # corrupt load counts as a miss
        assert not recompiled.from_cache
        # the recompile re-persisted a valid entry
        assert store.load_disk(key) is not None

        A = np.arange(5, dtype=np.float64)
        B = np.ones(5)
        B2 = np.ones(5)
        cold(A=A, B=B, N=5)
        recompiled(A=A, B=B2, N=5)
        np.testing.assert_allclose(B, B2)

    def test_checksum_mismatch_detected(self, store):
        sdfg = _fresh_sdfg()
        cached_compile(sdfg, store=store)
        key = cache_key(sdfg)
        path = store.entry_path(key)
        with open(path) as fh:
            doc = json.load(fh)
        doc["source"] = doc["source"] + "\n# tampered"
        with open(path, "w") as fh:
            json.dump(doc, fh)
        assert store.load_disk(key) is None
        assert not os.path.exists(path)  # evicted on detection

    def test_verify_reports_and_evicts(self, store):
        cached_compile(_fresh_sdfg(saxpy), store=store)
        cached_compile(_fresh_sdfg(scale), store=store)
        bad = store.entry_path(cache_key(_fresh_sdfg(scale)))
        with open(bad, "w") as fh:
            fh.write("garbage")
        ok, corrupted = store.verify()
        assert ok == 1 and corrupted == [bad]
        assert os.path.exists(bad)  # verify without evict keeps the file
        ok, corrupted = store.verify(evict=True)
        assert corrupted == [bad] and not os.path.exists(bad)

    def test_unknown_schema_rejected(self, store):
        entry = CacheEntry(key="k", program="p", source="", sdfg_json={},
                           closure_specs={})
        doc = entry.to_dict()
        doc["schema"] = "repro-cache-entry/999"
        with pytest.raises(ValueError):
            CacheEntry.from_dict(doc)


class TestConcurrency:
    def test_concurrent_writers_race_benignly(self, store):
        errors = []
        results = []
        barrier = threading.Barrier(4)

        def worker():
            try:
                barrier.wait()
                results.append(cached_compile(_fresh_sdfg(), store=store))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors and len(results) == 4
        ok, corrupted = store.verify()
        assert ok == 1 and not corrupted
        for compiled in results:
            A = np.arange(4, dtype=np.float64)
            B = np.zeros(4)
            compiled(A=A, B=B, N=4)
            np.testing.assert_allclose(B, 2.0 * A)


class TestWarmStartEndToEnd:
    def test_warm_start_skips_codegen_same_outputs(self, store):
        rng = np.random.default_rng(0)
        A = rng.random(16)
        B_cold = rng.random(16)
        B_warm = B_cold.copy()

        cold = cached_compile(_fresh_sdfg(), store=store, optimize="CPU")
        store.clear_memory()
        warm = cached_compile(_fresh_sdfg(), store=store, optimize="CPU")

        assert not cold.from_cache and warm.from_cache
        assert warm.codegen_seconds == 0.0
        assert warm.source == cold.source  # identical generated module
        cold(A=A, B=B_cold, N=16)
        warm(A=A, B=B_warm, N=16)
        np.testing.assert_allclose(B_cold, B_warm)

    def test_cache_events_instrumented(self, store):
        with instrumentation.profile("cache-test") as prof:
            cached_compile(_fresh_sdfg(), store=store)
        report = prof.report()
        names = {r.name for r in report.by_category("cache")}
        assert "miss" in names
        phases = {r.name for r in report.by_category("phase")}
        assert "validate" in phases and "codegen" in phases

        store.clear_memory()
        with instrumentation.profile("cache-test") as prof:
            cached_compile(_fresh_sdfg(), store=store)
        report = prof.report()
        names = {r.name for r in report.by_category("cache")}
        assert "hit-disk" in names
        # a hit skips validation and code generation entirely
        assert not report.by_category("phase")


class TestPerfGate:
    BASE = {
        "benchmarks": {"gemm": {"compile_cold_s": 0.1},
                       "atax": {"compile_cold_s": 0.1}},
        "failures": {},
        "geomean_speedup": 1.0,
        "geomean_interpreter_speedup": 0.01,
    }

    def test_gate_passes_on_equal_result(self):
        from repro.bench.profile import check_against_baseline

        assert check_against_baseline(dict(self.BASE), dict(self.BASE)) == []

    def test_gate_fails_on_speedup_regression(self):
        from repro.bench.profile import check_against_baseline

        slow = json.loads(json.dumps(self.BASE))
        slow["geomean_speedup"] = 0.5
        problems = check_against_baseline(slow, self.BASE, tolerance=0.25)
        assert any("geomean_speedup regressed" in p for p in problems)

    def test_gate_tolerates_small_drop(self):
        from repro.bench.profile import check_against_baseline

        near = json.loads(json.dumps(self.BASE))
        near["geomean_speedup"] = 0.9
        assert check_against_baseline(near, self.BASE, tolerance=0.25) == []

    def test_gate_fails_on_missing_benchmark(self):
        from repro.bench.profile import check_against_baseline

        partial = json.loads(json.dumps(self.BASE))
        del partial["benchmarks"]["atax"]
        partial["failures"] = {"atax": "RuntimeError: boom"}
        problems = check_against_baseline(partial, self.BASE)
        assert any("atax" in p and "absent" in p for p in problems)

    def test_gate_fails_on_compile_time_blowup(self):
        from repro.bench.profile import check_against_baseline

        slow = json.loads(json.dumps(self.BASE))
        for entry in slow["benchmarks"].values():
            entry["compile_cold_s"] = 10.0
        problems = check_against_baseline(slow, self.BASE,
                                          compile_tolerance=1.0)
        assert any("compile-time total regressed" in p for p in problems)

    def test_committed_baseline_is_valid(self):
        """The baseline the CI gate compares against must stay loadable and
        self-consistent (a result equals itself)."""
        from repro.bench.profile import check_against_baseline

        path = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "BENCH_baseline.json")
        with open(path) as fh:
            baseline = json.load(fh)
        assert baseline["benchmarks"]
        assert check_against_baseline(baseline, baseline) == []
