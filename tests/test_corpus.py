"""Corpus-wide correctness: every benchmark program must match its NumPy
reference, both out of the box and after CPU auto-optimization."""

import numpy as np
import pytest

from repro.autoopt import auto_optimize
from repro.bench import registry
from repro.codegen import compile_sdfg

ALL = registry.all_benchmarks()
NAMES = [b.name for b in ALL]

#: subset re-checked after the full -O3 pipeline (covers every structural
#: style in the corpus without doubling the suite's runtime)
AUTOOPT_SUBSET = [
    "gemm", "k2mm", "k3mm", "atax", "bicg", "mvt", "gemver", "gesummv",
    "jacobi_1d", "jacobi_2d", "heat_3d", "fdtd_2d", "doitgen",
    "floyd_warshall", "covariance", "correlation", "softmax", "hdiff",
    "histogram", "go_fast",
]


def check_outputs(bench, args_prog, args_ref, ret_prog, ret_ref):
    if bench.outputs:
        for name in bench.outputs:
            a = np.asarray(args_prog[name])
            b = np.asarray(args_ref[name])
            assert np.allclose(a, b, rtol=1e-8, atol=1e-8), \
                f"{bench.name}.{name}: max err {np.abs(a - b).max()}"
    else:
        assert np.allclose(ret_prog, ret_ref), \
            f"{bench.name}: return {ret_prog} != {ret_ref}"


@pytest.mark.parametrize("name", NAMES)
def test_matches_reference(name):
    bench = registry.get(name)
    args_prog = bench.arguments("test")
    args_ref = bench.arguments("test")
    ret_prog = bench.program(**args_prog)
    ret_ref = bench.reference(**args_ref)
    check_outputs(bench, args_prog, args_ref, ret_prog, ret_ref)


@pytest.mark.parametrize("name", AUTOOPT_SUBSET)
def test_matches_reference_after_autoopt(name):
    bench = registry.get(name)
    sdfg = bench.program.to_sdfg(**bench.arguments("test")).clone() \
        if bench.program._annotation_descs() is None \
        else bench.program.to_sdfg().clone()
    auto_optimize(sdfg, device="CPU")
    compiled = compile_sdfg(sdfg)
    args_prog = bench.arguments("test")
    args_ref = bench.arguments("test")
    call_args = {k: v for k, v in args_prog.items()}
    ret_prog = compiled(**call_args)
    ret_ref = bench.reference(**args_ref)
    check_outputs(bench, args_prog, args_ref, ret_prog, ret_ref)


def test_registry_complete():
    names = registry.names()
    assert len(names) == 45
    assert "gemm" in names and "crc16" in names


def test_registry_duplicate_rejected():
    bench = registry.get("gemm")
    with pytest.raises(KeyError):
        registry.register(bench)


def test_size_classes_exist():
    for bench in ALL:
        assert "test" in bench.sizes
        assert "small" in bench.sizes
        assert "large" in bench.sizes
