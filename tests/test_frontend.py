"""Frontend tests: translation of annotated Python to SDFGs (§2, Table 1)."""

import numpy as np
import pytest

import repro
from repro.frontend.astutils import UnsupportedFeature
from repro.ir import MapEntry, Tasklet

N = repro.symbol("N")
M = repro.symbol("M")


def run(prog, **kwargs):
    return prog(**kwargs)


class TestAssignments:
    def test_full_array_assign(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 3.0

        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        prog(A=A, B=B)
        assert np.allclose(B, A * 3)

    def test_subset_store(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A[1:-1] = 7.0

        A = np.zeros(6)
        prog(A=A)
        assert np.allclose(A, [0, 7, 7, 7, 7, 0])

    def test_point_store_with_symbolic_index(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A[N - 1] = 5.0

        A = np.zeros(4)
        prog(A=A)
        assert A[3] == 5.0

    def test_negative_literal_index(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A[-1] = 2.0
            A[-2] = 1.0

        A = np.zeros(5)
        prog(A=A)
        assert A[4] == 2.0 and A[3] == 1.0

    def test_strided_slice(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A[0:N:2] = 1.0

        A = np.zeros(6)
        prog(A=A)
        assert np.allclose(A, [1, 0, 1, 0, 1, 0])

    def test_row_assignment(self):
        @repro.program
        def prog(A: repro.float64[N, M], v: repro.float64[M]):
            A[2, :] = v

        A = np.zeros((4, 3))
        v = np.arange(3, dtype=np.float64)
        prog(A=A, v=v)
        assert np.allclose(A[2], v)
        assert np.allclose(A[0], 0)

    def test_column_assignment(self):
        @repro.program
        def prog(A: repro.float64[N, M], v: repro.float64[N]):
            A[:, 1] = v

        A = np.zeros((3, 4))
        v = np.arange(3, dtype=np.float64)
        prog(A=A, v=v)
        assert np.allclose(A[:, 1], v)

    def test_broadcast_scalar_into_subset(self):
        @repro.program
        def prog(A: repro.float64[N, N]):
            A[1:-1, 1:-1] = 9.0

        A = np.zeros((4, 4))
        prog(A=A)
        assert A[1, 1] == 9 and A[0, 0] == 0

    def test_chained_targets(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            A[:] = B[:] = 4.0

        A, B = np.zeros(3), np.zeros(3)
        prog(A=A, B=B)
        assert np.allclose(A, 4) and np.allclose(B, 4)


class TestExpressions:
    def test_operator_chain(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = (A + 1.0) * (A - 1.0) / 2.0

        A = np.linspace(1, 2, 5)
        B = np.zeros(5)
        prog(A=A, B=B)
        assert np.allclose(B, (A + 1) * (A - 1) / 2)

    def test_broadcasting_vector_matrix(self):
        @repro.program
        def prog(A: repro.float64[N, M], v: repro.float64[M],
                 B: repro.float64[N, M]):
            B[:] = A + v

        A = np.ones((3, 4))
        v = np.arange(4, dtype=np.float64)
        B = np.zeros((3, 4))
        prog(A=A, v=v, B=B)
        assert np.allclose(B, A + v)

    def test_broadcast_column_row(self):
        @repro.program
        def prog(A: repro.float64[N, 1], B: repro.float64[1, M],
                 C: repro.float64[N, M]):
            C[:] = A + B

        A = np.arange(3, dtype=np.float64).reshape(3, 1)
        B = np.arange(4, dtype=np.float64).reshape(1, 4)
        C = np.zeros((3, 4))
        prog(A=A, B=B, C=C)
        assert np.allclose(C, A + B)

    def test_integer_division_promotes(self):
        @repro.program
        def prog(A: repro.int64[N], B: repro.float64[N]):
            B[:] = A / 2

        A = np.arange(4, dtype=np.int64)
        B = np.zeros(4)
        prog(A=A, B=B)
        assert np.allclose(B, A / 2)

    def test_comparison_produces_bool(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = np.where(A > 2.0, 1.0, 0.0)

        A = np.arange(5, dtype=np.float64)
        B = np.zeros(5)
        prog(A=A, B=B)
        assert np.allclose(B, (A > 2).astype(float))

    def test_matmul_operator(self):
        @repro.program
        def prog(A: repro.float64[N, M], B: repro.float64[M, N],
                 C: repro.float64[N, N]):
            C[:] = A @ B

        A = np.random.default_rng(0).random((3, 5))
        B = np.random.default_rng(1).random((5, 3))
        C = np.zeros((3, 3))
        prog(A=A, B=B, C=C)
        assert np.allclose(C, A @ B)

    def test_dot_product_return(self):
        @repro.program
        def prog(a: repro.float64[N], b: repro.float64[N]):
            return a @ b

        a = np.arange(4, dtype=np.float64)
        b = np.ones(4)
        assert prog(a=a, b=b) == pytest.approx(6.0)

    def test_transpose_attribute(self):
        @repro.program
        def prog(A: repro.float64[N, M], B: repro.float64[M, N]):
            B[:] = A.T

        A = np.arange(6, dtype=np.float64).reshape(2, 3)
        B = np.zeros((3, 2))
        prog(A=A, B=B)
        assert np.allclose(B, A.T)

    def test_constant_folding_scalars(self):
        @repro.program
        def prog(A: repro.float64[N]):
            c = 2 * 3 + 1
            A[:] = A * c

        A = np.ones(3)
        prog(A=A)
        assert np.allclose(A, 7)


class TestAugmentedAssignment:
    def test_array_augassign(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0
            A *= 2.0

        A = np.zeros(3)
        prog(A=A)
        assert np.allclose(A, 2)

    def test_subset_augassign(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            A[1:-1] += B[1:-1] * 2.0

        A = np.ones(5)
        B = np.arange(5, dtype=np.float64)
        prog(A=A, B=B)
        assert np.allclose(A, [1, 3, 5, 7, 1])

    def test_scalar_accumulator_loop(self):
        @repro.program
        def prog(A: repro.float64[N]):
            total = 0.0
            for i in range(N):
                total += A[i]
            return total

        A = np.arange(5, dtype=np.float64)
        assert prog(A=A) == pytest.approx(10.0)


class TestControlFlow:
    def test_sequential_dependence(self):
        @repro.program
        def prog(A: repro.float64[N]):
            for i in range(1, N):
                A[i] = A[i - 1] * 2.0

        A = np.ones(5)
        prog(A=A)
        assert np.allclose(A, [1, 2, 4, 8, 16])

    def test_reverse_loop(self):
        @repro.program
        def prog(A: repro.float64[N]):
            for i in range(N - 2, -1, -1):
                A[i] = A[i + 1] + 1.0

        A = np.zeros(4)
        prog(A=A)
        assert np.allclose(A, [3, 2, 1, 0])

    def test_while_loop(self):
        @repro.program
        def prog(A: repro.float64[1]):
            count = 0.0
            while count < 5.0:
                count += 1.0
            A[0] = count

        A = np.zeros(1)
        prog(A=A)
        assert A[0] == 5.0

    def test_break(self):
        @repro.program
        def prog(A: repro.float64[N]):
            for i in range(N):
                if i >= 3:
                    break
                A[i] = 1.0

        A = np.zeros(6)
        prog(A=A)
        assert np.allclose(A, [1, 1, 1, 0, 0, 0])

    def test_continue(self):
        @repro.program
        def prog(A: repro.float64[N]):
            for i in range(N):
                if i % 2 == 0:
                    continue
                A[i] = 1.0

        A = np.zeros(6)
        prog(A=A)
        assert np.allclose(A, [0, 1, 0, 1, 0, 1])

    def test_if_else(self):
        @repro.program
        def prog(A: repro.float64[N], flag: repro.int32):
            if flag > 0:
                A[:] = 1.0
            else:
                A[:] = -1.0

        A = np.zeros(3)
        prog(A=A, flag=1)
        assert np.allclose(A, 1)
        prog(A=A, flag=0)
        assert np.allclose(A, -1)

    def test_iterate_over_array(self):
        @repro.program
        def prog(data: repro.float64[N]):
            total = 0.0
            for value in data:
                total += value * value
            return total

        data = np.arange(4, dtype=np.float64)
        assert prog(data=data) == pytest.approx(14.0)

    def test_data_dependent_bound(self):
        @repro.program
        def prog(counts: repro.int64[N], A: repro.float64[N]):
            for i in range(N):
                for r in range(counts[i]):
                    A[i] += 1.0

        counts = np.array([0, 1, 2, 3], dtype=np.int64)
        A = np.zeros(4)
        prog(counts=counts, A=A)
        assert np.allclose(A, counts)


class TestMapsAndReturns:
    def test_explicit_map(self):
        @repro.program
        def prog(A: repro.float64[N, N], B: repro.float64[N, N]):
            for i, j in repro.map[0:N, 0:N]:
                B[i, j] = A[i, j] * A[i, j]

        A = np.arange(9, dtype=np.float64).reshape(3, 3)
        B = np.zeros((3, 3))
        prog(A=A, B=B)
        assert np.allclose(B, A * A)

    def test_map_wcr_scalar(self):
        @repro.program
        def prog(C: repro.float64[N, N]):
            alpha = 0.0
            for i, j in repro.map[0:N, 0:N]:
                alpha += C[i, j]
            return alpha

        C = np.ones((3, 3))
        assert prog(C=C) == pytest.approx(9.0)

    def test_map_read_modify_write_no_race(self):
        @repro.program
        def prog(A: repro.float64[N]):
            for i in repro.map[0:N]:
                A[i] += 1.0

        A = np.zeros(4)
        prog(A=A)
        assert np.allclose(A, 1)

    def test_map_generates_map_node(self):
        @repro.program
        def prog(A: repro.float64[N]):
            for i in repro.map[0:N]:
                A[i] = 0.0

        sdfg = prog.to_sdfg()
        maps = [n for n, s in sdfg.all_nodes_recursive()
                if isinstance(n, MapEntry)]
        assert len(maps) == 1

    def test_tuple_return(self):
        @repro.program
        def prog(A: repro.float64[N]):
            return np.sum(A), np.max(A)

        A = np.array([1.0, 5.0, 2.0])
        total, biggest = prog(A=A)
        assert total == 8.0 and biggest == 5.0

    def test_array_return(self):
        @repro.program
        def prog(A: repro.float64[N]):
            return A * 2.0

        A = np.arange(3, dtype=np.float64)
        out = prog(A=A)
        assert np.allclose(out, A * 2)


class TestJITAndAOT:
    def test_unannotated_jit(self):
        @repro.program
        def prog(A, B):
            B[:] = A + 1.0

        A = np.zeros(4)
        B = np.zeros(4)
        prog(A, B)
        assert np.allclose(B, 1)

    def test_jit_cache_per_shape(self):
        @repro.program
        def prog(A):
            return np.sum(A)

        assert prog(np.ones(4)) == 4.0
        assert prog(np.ones((2, 2))) == 4.0
        assert len(prog._sdfg_cache) == 2

    def test_default_arguments(self):
        @repro.program
        def prog(A: repro.float64[N], factor=3.0):
            A *= factor

        A = np.ones(3)
        prog(A=A)
        assert np.allclose(A, 3.0)

    def test_annotated_aot_no_args(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0

        sdfg = prog.to_sdfg()  # no example arguments needed
        assert "A" in sdfg.arglist()


class TestNestedCalls:
    def test_nested_program_call(self):
        @repro.program
        def callee(X: repro.float64[N]):
            X += 1.0

        @repro.program
        def caller(A: repro.float64[N]):
            callee(A)
            callee(A)

        A = np.zeros(4)
        caller(A=A)
        assert np.allclose(A, 2)

    def test_nested_with_return(self):
        @repro.program
        def square_sum(X: repro.float64[N]):
            return np.sum(X * X)

        @repro.program
        def caller(A: repro.float64[N]):
            return square_sum(A) + 1.0

        A = np.arange(3, dtype=np.float64)
        assert caller(A=A) == pytest.approx(6.0)

    def test_plain_function_autowrapped(self):
        def helper(X):
            X *= 2.0

        @repro.program
        def caller(A: repro.float64[N]):
            helper(A)

        A = np.ones(3)
        caller(A=A)
        assert np.allclose(A, 2)


class TestDynamicIndexing:
    def test_indirect_read(self):
        @repro.program
        def prog(idx: repro.int64[N], src: repro.float64[M],
                 out: repro.float64[N]):
            for i in range(N):
                out[i] = src[idx[i]]

        idx = np.array([2, 0, 1], dtype=np.int64)
        src = np.array([10.0, 20.0, 30.0, 40.0])
        out = np.zeros(3)
        prog(idx=idx, src=src, out=out)
        assert np.allclose(out, [30, 10, 20])

    def test_indirect_accumulate(self):
        @repro.program
        def prog(idx: repro.int64[N], out: repro.float64[M]):
            for i in range(N):
                out[idx[i]] += 1.0

        idx = np.array([0, 1, 1, 2, 2, 2], dtype=np.int64)
        out = np.zeros(3)
        prog(idx=idx, out=out)
        assert np.allclose(out, [1, 2, 3])


class TestRestrictions:
    def test_list_argument_rejected(self):
        @repro.program
        def prog(A):
            return A[0]

        with pytest.raises((UnsupportedFeature, TypeError)):
            prog([1, 2, 3])

    def test_unsupported_statement(self):
        @repro.program
        def prog(A: repro.float64[N]):
            with open("/dev/null") as fh:  # noqa
                pass

        with pytest.raises(UnsupportedFeature):
            prog.to_sdfg()

    def test_recursion_rejected(self):
        @repro.program
        def prog(A: repro.float64[N]):
            prog(A)

        with pytest.raises((UnsupportedFeature, RecursionError)):
            prog.to_sdfg()

    def test_fallback_mode(self):
        @repro.program(fallback=True)
        def prog(A):
            return {"a": A.sum()}  # dicts are unsupported

        with pytest.warns(RuntimeWarning):
            result = prog(np.ones(3))
        assert result["a"] == 3.0

    def test_gemm_state_count_matches_paper(self):
        """§2.3: gemm decomposes into the four SSA steps before coarsening."""
        @repro.program
        def gemm(alpha: repro.float64, beta: repro.float64,
                 C: repro.float64[4, 4], A: repro.float64[4, 4],
                 B: repro.float64[4, 4]):
            C[:] = alpha * A @ B + beta * C

        uncoarsened = gemm.to_sdfg(simplify=False)
        # init + four operation states (tmp0, tmp1, tmp2, sum) + copy
        assert uncoarsened.number_of_states() >= 5
        coarsened = gemm.to_sdfg(simplify=True)
        assert coarsened.number_of_states() < uncoarsened.number_of_states()
