"""Unit tests for the reference interpreter (hand-built SDFGs)."""

import numpy as np
import pytest

import repro
from repro.ir import SDFG, InterstateEdge, Memlet
from repro.runtime.executor import ExecutionError, run_sdfg
from repro.runtime.wcr import WCR_IDENTITY, apply_wcr
from repro.symbolic import Symbol

N = Symbol("N")


class TestMaps:
    def test_elementwise_map(self):
        sdfg = SDFG("scale")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("B", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("m", {"i": "0:N"},
                                 {"__in": Memlet("A", "i")},
                                 "__out = __in + 1",
                                 {"__out": Memlet("B", "i")})
        A = np.arange(5, dtype=np.float64)
        B = np.zeros(5)
        run_sdfg(sdfg, A=A, B=B)
        assert np.allclose(B, A + 1)

    def test_2d_map_transpose(self):
        sdfg = SDFG("t")
        sdfg.add_array("A", (N, N), repro.float64)
        sdfg.add_array("B", (N, N), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("m", {"i": "0:N", "j": "0:N"},
                                 {"__in": Memlet("A", "j, i")},
                                 "__out = __in",
                                 {"__out": Memlet("B", "i, j")})
        A = np.arange(9, dtype=np.float64).reshape(3, 3)
        B = np.zeros((3, 3))
        run_sdfg(sdfg, A=A, B=B)
        assert np.allclose(B, A.T)

    def test_empty_range_map(self):
        sdfg = SDFG("empty")
        sdfg.add_array("A", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("m", {"i": "2:2"},
                                 {"__in": Memlet("A", "i")},
                                 "__out = 99.0",
                                 {"__out": Memlet("A", "i")})
        A = np.ones(4)
        run_sdfg(sdfg, A=A)
        assert np.allclose(A, 1)

    def test_wcr_sum_reduction(self):
        sdfg = SDFG("red")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_scalar("out", repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("m", {"i": "0:N"},
                                 {"__v": Memlet("A", "i")}, "__out = __v",
                                 {"__out": Memlet("out", "0", wcr="sum")})
        A = np.arange(6, dtype=np.float64)
        result = np.zeros(1)
        containers, symbols = {}, {}
        run_sdfg(sdfg, A=A, out=0.0)

    def test_wcr_max(self):
        sdfg = SDFG("redmax")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("out", (1,), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("m", {"i": "0:N"},
                                 {"__v": Memlet("A", "i")}, "__out = __v",
                                 {"__out": Memlet("out", "0", wcr="max")})
        A = np.array([3.0, 9.0, 1.0])
        out = np.full(1, -np.inf)
        run_sdfg(sdfg, A=A, out=out)
        assert out[0] == 9.0


class TestControlFlow:
    def _loop_sdfg(self):
        sdfg = SDFG("loop")
        sdfg.add_array("C", (N,), repro.float64)
        sdfg.add_symbol("i")
        init = sdfg.add_state("init", is_start_state=True)
        guard = sdfg.add_state("guard")
        body = sdfg.add_state("body")
        end = sdfg.add_state("end")
        sdfg.add_edge(init, guard, InterstateEdge(assignments={"i": "0"}))
        sdfg.add_edge(guard, body, InterstateEdge("i < N"))
        sdfg.add_edge(body, guard, InterstateEdge(assignments={"i": "i + 1"}))
        sdfg.add_edge(guard, end, InterstateEdge("i >= N"))
        tasklet = body.add_tasklet("inc", {"__in"}, {"__out"},
                                   "__out = __in + i")
        body.add_edge(body.add_read("C"), None, tasklet, "__in", Memlet("C", "i"))
        body.add_edge(tasklet, "__out", body.add_write("C"), None, Memlet("C", "i"))
        return sdfg

    def test_loop_executes_n_times(self):
        sdfg = self._loop_sdfg()
        C = np.zeros(5)
        run_sdfg(sdfg, C=C, N=5)
        assert np.allclose(C, np.arange(5))

    def test_zero_trip_loop(self):
        sdfg = self._loop_sdfg()
        C = np.zeros(0)
        run_sdfg(sdfg, C=C, N=0)

    def test_branch_on_scalar_container(self):
        sdfg = SDFG("branch")
        sdfg.add_scalar("x", repro.float64)
        sdfg.add_array("out", (1,), repro.float64)
        start = sdfg.add_state()
        then = sdfg.add_state()
        other = sdfg.add_state()
        sdfg.add_edge(start, then, InterstateEdge("x > 0"))
        sdfg.add_edge(start, other, InterstateEdge("x <= 0"))
        for state, value in ((then, "1.0"), (other, "-1.0")):
            tasklet = state.add_tasklet("w", set(), {"__out"}, f"__out = {value}")
            state.add_edge(tasklet, "__out", state.add_write("out"), None,
                           Memlet("out", "0"))
        out = np.zeros(1)
        run_sdfg(sdfg, x=5.0, out=out)
        assert out[0] == 1.0
        run_sdfg(sdfg, x=-5.0, out=out)
        assert out[0] == -1.0


class TestCopiesAndArguments:
    def test_subset_copy_with_other_subset(self):
        sdfg = SDFG("copy")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("B", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_nedge(state.add_read("A"), state.add_write("B"),
                        Memlet("A", "0:4", other_subset="2:6"))
        A = np.arange(8, dtype=np.float64)
        B = np.zeros(8)
        run_sdfg(sdfg, A=A, B=B)
        assert np.allclose(B[2:6], A[0:4])
        assert B[0] == 0 and B[6] == 0

    def test_dtype_mismatch_rejected(self):
        sdfg = SDFG("typed")
        sdfg.add_array("A", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_access("A")
        with pytest.raises(ExecutionError):
            run_sdfg(sdfg, A=np.zeros(4, dtype=np.float32))

    def test_missing_argument(self):
        sdfg = SDFG("missing")
        sdfg.add_array("A", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_access("A")
        with pytest.raises(ExecutionError):
            run_sdfg(sdfg, N=4)

    def test_unknown_argument(self):
        sdfg = SDFG("unknown")
        sdfg.add_state()
        with pytest.raises(ExecutionError):
            run_sdfg(sdfg, bogus=1)

    def test_inconsistent_symbol(self):
        sdfg = SDFG("sym")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("B", (N,), repro.float64)
        sdfg.add_state()
        with pytest.raises(ExecutionError):
            run_sdfg(sdfg, A=np.zeros(3), B=np.zeros(4))

    def test_shape_expression_verified(self):
        sdfg = SDFG("expr")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("B", (N + 2,), repro.float64)
        sdfg.add_state()
        with pytest.raises(ExecutionError):
            run_sdfg(sdfg, A=np.zeros(4), B=np.zeros(4))


class TestWCRPrimitives:
    @pytest.mark.parametrize("wcr,expected", [
        ("sum", 7.0), ("prod", 12.0), ("min", 3.0), ("max", 4.0)])
    def test_apply_wcr_scalar(self, wcr, expected):
        storage = np.array([3.0])
        apply_wcr(storage, 0, 4.0, wcr)
        assert storage[0] == expected

    def test_identity_elements(self):
        assert WCR_IDENTITY["sum"] == 0.0
        assert WCR_IDENTITY["prod"] == 1.0
        assert WCR_IDENTITY["min"] == float("inf")

    def test_apply_wcr_repeated_indices(self):
        """ufunc.at semantics: repeated indices accumulate."""
        storage = np.zeros(3)
        apply_wcr(storage, np.array([0, 0, 1]), np.array([1.0, 2.0, 5.0]), "sum")
        assert np.allclose(storage, [3.0, 5.0, 0.0])


class TestStreams:
    def test_stream_fifo_semantics(self):
        sdfg = SDFG("stream")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("B", (N,), repro.float64)
        sdfg.add_stream("fifo", repro.float64)
        push = sdfg.add_state("push")
        pop = sdfg.add_state_after(push, "pop")
        push.add_mapped_tasklet("p", {"i": "0:N"},
                                {"__in": Memlet("A", "i")}, "__out = __in",
                                {"__out": Memlet("fifo", "0")})
        pop.add_mapped_tasklet("q", {"i": "0:N"},
                               {"__in": Memlet("fifo", "0")}, "__out = __in",
                               {"__out": Memlet("B", "i")})
        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        run_sdfg(sdfg, A=A, B=B)
        assert np.allclose(B, A)  # FIFO order preserved


class TestInferSymbolErrors:
    """Error paths of symbol inference (static symbolic typing, §2.3)."""

    def _sdfg(self, shapes):
        sdfg = SDFG("sym")
        for name, shape in shapes.items():
            sdfg.add_array(name, shape, repro.float64)
        sdfg.add_state("s0")
        return sdfg

    def test_rank_mismatch(self):
        from repro.runtime.executor import infer_symbols

        sdfg = self._sdfg({"A": (N,)})
        with pytest.raises(ExecutionError, match="dimensions"):
            infer_symbols(sdfg, {"A": np.zeros((2, 2))})

    def test_inconsistent_symbol_bindings(self):
        from repro.runtime.executor import infer_symbols

        sdfg = self._sdfg({"A": (N,), "B": (N,)})
        with pytest.raises(ExecutionError, match="inconsistent value for symbol N"):
            infer_symbols(sdfg, {"A": np.zeros(3), "B": np.zeros(4)})

    def test_composite_dimension_mismatch(self):
        from repro.runtime.executor import infer_symbols

        sdfg = self._sdfg({"A": (N, N * 2)})
        with pytest.raises(ExecutionError, match="evaluates to"):
            infer_symbols(sdfg, {"A": np.zeros((3, 5))})

    def test_composite_dimension_match(self):
        from repro.runtime.executor import infer_symbols

        sdfg = self._sdfg({"A": (N, N * 2)})
        assert infer_symbols(sdfg, {"A": np.zeros((3, 6))}) == {"N": 3}

    def test_rank_mismatch_surfaces_through_run_sdfg(self):
        sdfg = self._sdfg({"A": (N,)})
        with pytest.raises(ExecutionError, match="dimensions"):
            run_sdfg(sdfg, A=np.zeros((2, 2)))


class TestScalarSymbolBinding:
    """Free symbols supplied as integer scalar arguments must bind
    (shape-less programs have no shape to infer them from)."""

    def _shapeless(self):
        sdfg = SDFG("shapeless")
        sdfg.add_scalar("N", repro.int32)
        sdfg.add_array("T", (N,), repro.float64, transient=True)
        sdfg.add_array("out", (1,), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("fill", {"i": "0:N"},
                                 {}, "__out = 1.0 * i",
                                 {"__out": Memlet("T", "i")})
        state2 = sdfg.add_state_after(state)
        state2.add_mapped_tasklet("sum", {"i": "0:N"},
                                  {"__v": Memlet("T", "i")}, "__out = __v",
                                  {"__out": Memlet("out", "0", wcr="sum")})
        return sdfg

    def test_scalar_argument_binds_symbol(self):
        from repro.runtime.executor import infer_symbols

        sdfg = self._shapeless()
        env = infer_symbols(sdfg, {"N": np.array([5], dtype=np.int32)})
        assert env == {"N": 5}

    def test_shapeless_program_executes(self):
        # only the scalar argument N can size the transient and map range
        sdfg = self._shapeless()
        out = np.zeros(1)
        run_sdfg(sdfg, N=5, out=out)
        assert out[0] == sum(range(5))

    def test_scalar_conflicts_with_shape_binding(self):
        sdfg = SDFG("conflict")
        sdfg.add_scalar("N", repro.int32)
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_state()
        with pytest.raises(ExecutionError,
                           match="shape-derived 4 vs scalar argument 7"):
            run_sdfg(sdfg, N=7, A=np.zeros(4))

    def test_matching_scalar_and_shape_accepted(self):
        sdfg = SDFG("agree")
        sdfg.add_scalar("N", repro.int32)
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_state()
        run_sdfg(sdfg, N=4, A=np.zeros(4))  # must not raise

    def test_non_integer_scalar_does_not_bind(self):
        from repro.runtime.executor import infer_symbols

        sdfg = SDFG("floaty")
        sdfg.add_scalar("alpha", repro.float64)
        sdfg.add_state()
        env = infer_symbols(sdfg, {"alpha": np.array([2.5])})
        assert env == {}
