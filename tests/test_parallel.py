"""Tests for the multicore CPU execution backend (DESIGN.md §11): the
race-free scheduling gate, dtype-aware WCR identities, chunked pool
dispatch on both backends, deterministic serial fallbacks, and the
thread-variant cache keys."""

import threading

import numpy as np
import pytest

import repro
import repro.dtypes as dt
from repro.codegen import compile_sdfg
from repro.config import Config
from repro.ir.memlet import Memlet
from repro.ir.nodes import MapEntry, ScheduleType
from repro.ir.sdfg import SDFG
from repro.runtime import parallel
from repro.runtime.executor import run_sdfg
from repro.runtime.wcr import WCR_IDENTITY, identity_like, wcr_identity
from repro.symbolic import Range

N = 400


@pytest.fixture(autouse=True)
def _fresh_parallel_state():
    parallel.reset_stats()
    yield
    parallel.shutdown_pool()
    parallel.reset_stats()


def reduce_sdfg(dtype, wcr, code="o = a"):
    """A 1-D reduction over A into out[0] through a WCR memlet."""
    sdfg = SDFG("red")
    sdfg.add_array("A", (N,), dtype)
    sdfg.add_array("out", (1,), dtype)
    st = sdfg.add_state("s")
    st.add_mapped_tasklet(
        "red", {"i": (0, N - 1, 1)},
        {"a": Memlet("A", Range.from_string("i"))},
        code,
        {"o": Memlet("out", Range.from_string("0"), wcr=wcr)})
    return sdfg


def mark_multicore(sdfg):
    for state in sdfg.states():
        scope = state.scope_dict()
        for node in state.nodes():
            if isinstance(node, MapEntry) and scope.get(node) is None:
                node.map.schedule = ScheduleType.CPU_Multicore
    return sdfg


# ---------------------------------------------------------------------------
# satellite 1: dtype-aware WCR identities
# ---------------------------------------------------------------------------

class TestWcrIdentity:
    @pytest.mark.parametrize("npdt", [np.int32, np.int64, np.float32,
                                      np.float64])
    def test_sum_prod_zero_one_typed(self, npdt):
        zero = wcr_identity("sum", npdt)
        one = wcr_identity("prod", npdt)
        assert zero == 0 and one == 1
        assert zero.dtype == np.dtype(npdt)
        assert one.dtype == np.dtype(npdt)

    @pytest.mark.parametrize("npdt", [np.int32, np.int64, np.uint8])
    def test_integer_min_max_use_iinfo_bounds(self, npdt):
        info = np.iinfo(npdt)
        assert wcr_identity("min", npdt) == info.max
        assert wcr_identity("max", npdt) == info.min
        assert wcr_identity("min", npdt).dtype == np.dtype(npdt)

    def test_float_min_max_are_infinities(self):
        assert wcr_identity("min", np.float64) == np.inf
        assert wcr_identity("max", np.float32) == -np.inf

    def test_bool_identities(self):
        assert wcr_identity("logical_and", np.bool_) == True  # noqa: E712
        assert wcr_identity("logical_or", np.bool_) == False  # noqa: E712
        assert wcr_identity("min", np.bool_) == True  # noqa: E712
        assert wcr_identity("max", np.bool_) == False  # noqa: E712
        assert wcr_identity("sum", np.bool_).dtype == np.dtype(np.bool_)

    def test_unknown_wcr_raises(self):
        with pytest.raises(KeyError):
            wcr_identity("xor", np.int32)

    def test_identity_like_matches_shape_and_dtype(self):
        a = np.empty((3, 5), dtype=np.int32)
        ident = identity_like(a, "min")
        assert ident.shape == a.shape and ident.dtype == a.dtype
        assert (ident == np.iinfo(np.int32).max).all()

    def test_legacy_float_table_still_exported(self):
        # older call sites index the float table directly
        assert WCR_IDENTITY["sum"] == 0.0
        assert WCR_IDENTITY["min"] == float("inf")


# ---------------------------------------------------------------------------
# chunk partitioning
# ---------------------------------------------------------------------------

class TestChunkBounds:
    @pytest.mark.parametrize("n,parts", [(1, 4), (4, 4), (10, 3), (400, 7),
                                         (5, 100)])
    def test_partition_properties(self, n, parts):
        bounds = parallel._chunk_bounds(n, parts)
        # covers [0, n) exactly, contiguously, balanced to within one
        assert bounds[0][0] == 0 and bounds[-1][1] == n
        for (alo, ahi), (blo, bhi) in zip(bounds, bounds[1:]):
            assert ahi == blo
        sizes = [hi - lo for lo, hi in bounds]
        assert all(s > 0 for s in sizes)
        assert max(sizes) - min(sizes) <= 1
        assert len(bounds) <= min(parts, n)


# ---------------------------------------------------------------------------
# tentpole: the race-free scheduling gate
# ---------------------------------------------------------------------------

class TestScheduleGate:
    def test_race_free_map_promoted(self):
        from repro.transformations.device.cpu_transform import CPUParallelize

        sdfg = SDFG("ok")
        sdfg.add_array("A", (N,), dt.float64)
        sdfg.add_array("B", (N,), dt.float64)
        st = sdfg.add_state("s")
        st.add_mapped_tasklet(
            "copy", {"i": (0, N - 1, 1)},
            {"a": Memlet("A", Range.from_string("i"))}, "o = a * 2.0",
            {"o": Memlet("B", Range.from_string("i"))})
        CPUParallelize.apply_repeated(sdfg)
        scheds = [n.map.schedule for state in sdfg.states()
                  for n in state.nodes() if isinstance(n, MapEntry)]
        assert scheds == [ScheduleType.CPU_Multicore]

    def test_racy_map_pinned_sequential(self):
        from repro.transformations.device.cpu_transform import CPUParallelize

        sdfg = SDFG("racy")
        sdfg.add_array("A", (N,), dt.float64)
        sdfg.add_array("B", (1,), dt.float64)
        st = sdfg.add_state("s")
        # non-WCR write of every iteration into B[0]: a provable race
        st.add_mapped_tasklet(
            "race", {"i": (0, N - 1, 1)},
            {"a": Memlet("A", Range.from_string("i"))}, "o = a",
            {"o": Memlet("B", Range.from_string("0"))})
        CPUParallelize.apply_repeated(sdfg)
        scheds = [n.map.schedule for state in sdfg.states()
                  for n in state.nodes() if isinstance(n, MapEntry)]
        # pinned Sequential (never CPU_Multicore), and pinning means
        # apply_repeated reached a fixed point instead of looping
        assert scheds == [ScheduleType.Sequential]

    def test_wcr_map_is_race_free_and_promoted(self):
        from repro.transformations.device.cpu_transform import CPUParallelize

        sdfg = reduce_sdfg(dt.float64, "sum")
        CPUParallelize.apply_repeated(sdfg)
        scheds = [n.map.schedule for state in sdfg.states()
                  for n in state.nodes() if isinstance(n, MapEntry)]
        assert scheds == [ScheduleType.CPU_Multicore]

    def test_schedule_survives_serialization(self):
        from repro.ir.serialize import sdfg_from_json

        sdfg = mark_multicore(reduce_sdfg(dt.float64, "sum"))
        rt = sdfg_from_json(sdfg.to_json())
        scheds = [n.map.schedule for state in rt.states()
                  for n in state.nodes() if isinstance(n, MapEntry)]
        assert scheds == [ScheduleType.CPU_Multicore]


# ---------------------------------------------------------------------------
# WCR reductions across dtypes on every tier (satellite 4)
# ---------------------------------------------------------------------------

REDUCE_CASES = [
    (dt.float64, np.float64, "sum"),
    (dt.float32, np.float32, "sum"),
    (dt.int32, np.int32, "sum"),
    (dt.int64, np.int64, "max"),
    (dt.int32, np.int32, "min"),
]


def _reduce_expect(A, wcr):
    return {"sum": A.sum(), "min": A.min(), "max": A.max()}[wcr]


class TestParallelWcrReduce:
    @pytest.mark.parametrize("dtype,npdt,wcr", REDUCE_CASES)
    def test_vectorized_parallel(self, dtype, npdt, wcr):
        rng = np.random.default_rng(0)
        A = (rng.random(N) * 100).astype(npdt)
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            compiled = compile_sdfg(mark_multicore(reduce_sdfg(dtype, wcr)),
                                    cache=False)
            assert "__par_map" in compiled.source
            out = np.full(1, wcr_identity(wcr, npdt), dtype=npdt)
            compiled(A=A, out=out)
        expect = _reduce_expect(A, wcr)
        np.testing.assert_allclose(
            out[0], expect, rtol=1e-6 if npdt is np.float32 else 1e-12)
        assert parallel.stats().parallel_regions >= 1
        assert parallel.stats().chunks >= 2

    @pytest.mark.parametrize("dtype,npdt,wcr", REDUCE_CASES)
    def test_interpreter_parallel(self, dtype, npdt, wcr):
        rng = np.random.default_rng(1)
        A = (rng.random(N) * 100).astype(npdt)
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            out = np.full(1, wcr_identity(wcr, npdt), dtype=npdt)
            run_sdfg(mark_multicore(reduce_sdfg(dtype, wcr)), A=A, out=out)
        np.testing.assert_allclose(
            out[0], _reduce_expect(A, wcr),
            rtol=1e-6 if npdt is np.float32 else 1e-12)
        assert parallel.stats().parallel_regions >= 1

    @pytest.mark.parametrize("dtype,npdt,wcr", [(dt.float64, np.float64, "sum"),
                                                (dt.int32, np.int32, "min")])
    def test_compiled_loop_fallback_parallel(self, dtype, npdt, wcr):
        # referencing the map parameter by name defeats vectorization,
        # forcing the compiled module onto the interpreter fallback for
        # this scope — which must still dispatch CPU_Multicore chunks
        code = "o = a + (i - i)"
        rng = np.random.default_rng(2)
        A = (rng.random(N) * 100).astype(npdt)
        ref = A
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            compiled = compile_sdfg(
                mark_multicore(reduce_sdfg(dtype, wcr, code=code)),
                cache=False)
            assert "__par_map" not in compiled.source
            out = np.full(1, wcr_identity(wcr, npdt), dtype=npdt)
            compiled(A=A, out=out)
        np.testing.assert_allclose(out[0], _reduce_expect(ref, wcr),
                                   rtol=1e-12)
        assert parallel.stats().parallel_regions >= 1

    def test_bool_logical_reductions(self):
        for wcr, expect in (("logical_and", False), ("logical_or", True)):
            sdfg = mark_multicore(reduce_sdfg(dt.bool_, wcr))
            A = np.zeros(N, dtype=np.bool_)
            A[N // 2] = True        # mixed: and -> False, or -> True
            out = np.full(1, wcr_identity(wcr, np.bool_), dtype=np.bool_)
            with Config.override(device__cpu_threads=4, parallel__min_work=0):
                run_sdfg(sdfg, A=A, out=out)
            assert out[0] == expect

    def test_elementwise_parallel_matches_serial(self):
        sdfg = SDFG("axpy")
        sdfg.add_array("X", (N,), dt.float64)
        sdfg.add_array("Y", (N,), dt.float64)
        st = sdfg.add_state("s")
        st.add_mapped_tasklet(
            "axpy", {"i": (0, N - 1, 1)},
            {"x": Memlet("X", Range.from_string("i")),
             "y": Memlet("Y", Range.from_string("i"))},
            "o = 2.0 * x + y",
            {"o": Memlet("Y", Range.from_string("i"))})
        rng = np.random.default_rng(3)
        X = rng.random(N)
        Y0 = rng.random(N)
        Y_serial, Y_par = Y0.copy(), Y0.copy()
        with Config.override(device__cpu_threads=1):
            compile_sdfg(mark_multicore(sdfg.clone()),
                         cache=False)(X=X, Y=Y_serial)
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            compile_sdfg(mark_multicore(sdfg.clone()),
                         cache=False)(X=X, Y=Y_par)
        np.testing.assert_array_equal(Y_serial, Y_par)
        assert parallel.stats().parallel_regions >= 1


# ---------------------------------------------------------------------------
# satellite 3: cross-connector alias rejection in _try_vector_scope
# ---------------------------------------------------------------------------

def shifted_store_sdfg():
    """One tasklet writing A[i] and A[i+1] through different connectors:
    element-wise order matters, so vectorization must refuse."""
    sdfg = SDFG("alias")
    sdfg.add_array("A", (N + 1,), dt.float64)
    sdfg.add_array("B", (N,), dt.float64)
    st = sdfg.add_state("s")
    st.add_mapped_tasklet(
        "shift", {"i": (0, N - 1, 1)},
        {"b": Memlet("B", Range.from_string("i"))},
        "o1 = b\no2 = b + 1.0",
        {"o1": Memlet("A", Range.from_string("i")),
         "o2": Memlet("A", Range.from_string("i + 1"))})
    return sdfg


class TestVectorAliasRejection:
    def test_shifted_stores_not_vectorized(self):
        compiled = compile_sdfg(shifted_store_sdfg(), cache=False)
        assert "make_slice" not in compiled.source  # fell back to the loop

    def test_shifted_stores_semantics_match_interpreter(self):
        rng = np.random.default_rng(4)
        B = rng.random(N)
        A_c = np.zeros(N + 1)
        A_i = np.zeros(N + 1)
        compile_sdfg(shifted_store_sdfg(), cache=False)(A=A_c, B=B)
        run_sdfg(shifted_store_sdfg(), A=A_i, B=B)
        np.testing.assert_array_equal(A_c, A_i)
        # serial semantics: iteration i overwrites iteration i-1's o2 store
        np.testing.assert_array_equal(A_c[:N], B)
        assert A_c[N] == B[N - 1] + 1.0

    def test_identical_subset_stores_still_vectorize(self):
        sdfg = SDFG("dup")
        sdfg.add_array("A", (N,), dt.float64)
        sdfg.add_array("B", (N,), dt.float64)
        st = sdfg.add_state("s")
        st.add_mapped_tasklet(
            "dup", {"i": (0, N - 1, 1)},
            {"b": Memlet("B", Range.from_string("i"))},
            "o1 = b\no2 = b * 2.0",
            {"o1": Memlet("A", Range.from_string("i")),
             "o2": Memlet("A", Range.from_string("i"))})
        compiled = compile_sdfg(sdfg, cache=False)
        assert "make_slice" in compiled.source
        B = np.arange(N, dtype=np.float64)
        A = np.zeros(N)
        compiled(A=A, B=B)
        np.testing.assert_array_equal(A, B * 2.0)  # last store wins, as serial


# ---------------------------------------------------------------------------
# runtime gating: thresholds, nesting, pool failure, env resolution
# ---------------------------------------------------------------------------

class TestRuntimeGating:
    def test_min_work_keeps_small_maps_serial(self):
        A = np.random.default_rng(5).random(N)
        out = np.zeros(1)
        with Config.override(device__cpu_threads=4,
                             parallel__min_work=10**9):
            compile_sdfg(mark_multicore(reduce_sdfg(dt.float64, "sum")),
                         cache=False)(A=A, out=out)
        assert parallel.stats().parallel_regions == 0
        assert parallel.stats().serial_regions >= 1
        np.testing.assert_allclose(out[0], A.sum())

    def test_single_thread_config_is_serial(self):
        A = np.random.default_rng(6).random(N)
        out = np.zeros(1)
        with Config.override(device__cpu_threads=1, parallel__min_work=0):
            compile_sdfg(mark_multicore(reduce_sdfg(dt.float64, "sum")),
                         cache=False)(A=A, out=out)
        assert parallel.stats().parallel_regions == 0
        np.testing.assert_allclose(out[0], A.sum())

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(parallel, "get_pool", lambda size: None)
        A = np.random.default_rng(7).random(N)
        out = np.zeros(1)
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            compile_sdfg(mark_multicore(reduce_sdfg(dt.float64, "sum")),
                         cache=False)(A=A, out=out)
        np.testing.assert_allclose(out[0], A.sum())
        assert parallel.stats().pool_failures >= 1

    def test_pool_failure_emits_structured_recovery_event(self, monkeypatch):
        from repro.instrumentation import profile

        monkeypatch.setattr(parallel, "get_pool", lambda size: None)
        A = np.random.default_rng(9).random(N)
        out = np.zeros(1)
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            with profile("fb") as prof:
                compile_sdfg(mark_multicore(reduce_sdfg(dt.float64, "sum")),
                             cache=False)(A=A, out=out)
        np.testing.assert_allclose(out[0], A.sum())
        events = prof.report().by_category("recovery")
        assert events, "pool fallback must emit a recovery event"
        assert any(e.name.startswith("pool-fallback:")
                   and e.name.endswith(":pool-unavailable") for e in events)

    def test_submit_rejection_emits_recovery_event(self, monkeypatch):
        from repro.instrumentation import profile

        class RejectingPool:
            def submit(self, *a, **k):
                raise RuntimeError("cannot schedule new futures")

        monkeypatch.setattr(parallel, "get_pool",
                            lambda size: RejectingPool())
        ran = []
        tasks = [lambda: ran.append(1), lambda: ran.append(2)]
        with profile("rej") as prof:
            parallel._dispatch(tasks, "rej")
        assert ran == [1, 2]                # degraded inline, in order
        events = prof.report().by_category("recovery")
        rejected = [e for e in events
                    if e.name == "pool-fallback:rej:submit-rejected"]
        assert rejected and rejected[0].count == len(tasks)

    def test_nested_regions_run_serial_in_workers(self):
        seen = []

        def body(lo, hi, acc):
            seen.append(parallel.in_worker())
            # a nested region inside a worker must not re-enter the pool
            parallel.parallel_map(lambda l, h, a: None, 0, 9, 1, 10**9, {})

        with Config.override(device__cpu_threads=2, parallel__min_work=0):
            parallel.parallel_map(body, 0, 99, 1, 10**9, {})
        assert seen and all(seen)
        assert parallel.stats().parallel_regions == 1  # outer only

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPU_THREADS", "3")
        with Config.override(device__cpu_threads=0):
            assert parallel.configured_threads() == 3
        with Config.override(device__cpu_threads=7):
            assert parallel.configured_threads() == 7  # config wins

    def test_exception_in_chunk_propagates(self):
        def body(lo, hi, acc):
            raise ValueError("chunk boom")

        with Config.override(device__cpu_threads=2, parallel__min_work=0):
            with pytest.raises(ValueError, match="chunk boom"):
                parallel.parallel_map(body, 0, 99, 1, 10**9, {})


# ---------------------------------------------------------------------------
# cache: thread-variant keys (satellite of the tentpole)
# ---------------------------------------------------------------------------

class TestThreadVariantCacheKey:
    def test_config_digest_varies_with_threads(self):
        from repro.cache.fingerprint import config_digest

        with Config.override(device__cpu_threads=1):
            d1 = config_digest()
        with Config.override(device__cpu_threads=4):
            d4 = config_digest()
        assert d1 != d4

    def test_cache_key_varies_with_threads(self):
        from repro.cache.fingerprint import cache_key

        sdfg = reduce_sdfg(dt.float64, "sum")
        with Config.override(device__cpu_threads=1):
            k1 = cache_key(sdfg)
        with Config.override(device__cpu_threads=4):
            k4 = cache_key(sdfg)
        assert k1 != k4


# ---------------------------------------------------------------------------
# satellite 2: counter thread-safety
# ---------------------------------------------------------------------------

class TestCounterThreadSafety:
    def test_cache_stats_bump_is_atomic(self):
        from repro.cache.store import CacheStats

        st = CacheStats()
        threads = [threading.Thread(
            target=lambda: [st.bump("misses") for _ in range(2000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert st.misses == 8 * 2000

    def test_profile_collector_add_is_atomic(self):
        from repro.instrumentation import ProfileCollector

        coll = ProfileCollector("t")
        threads = [threading.Thread(
            target=lambda: [coll.add("parallel", "chunk", 0.001)
                            for _ in range(2000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stat = coll.report().get("parallel", "chunk")
        assert stat is not None and stat.count == 8 * 2000

    def test_parallel_stats_bump_is_atomic(self):
        st = parallel.ParallelStats()
        threads = [threading.Thread(
            target=lambda: [st.bump("chunks") for _ in range(2000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert st.to_dict()["chunks"] == 8 * 2000


# ---------------------------------------------------------------------------
# instrumentation: per-worker region timers
# ---------------------------------------------------------------------------

class TestParallelInstrumentation:
    def test_chunk_timers_recorded(self):
        from repro.instrumentation import profile

        A = np.random.default_rng(8).random(N)
        out = np.zeros(1)
        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            compiled = compile_sdfg(
                mark_multicore(reduce_sdfg(dt.float64, "sum")), cache=False)
            with profile("red") as prof:
                compiled(A=A, out=out)
        report = prof.report()
        stats = report.by_category("parallel")
        assert stats and sum(s.count for s in stats) >= 2  # one per chunk


# ---------------------------------------------------------------------------
# differential oracle: parallel vs serial (acceptance criterion)
# ---------------------------------------------------------------------------

class TestParallelOracle:
    def test_oracle_tolerance_equal_under_threads(self):
        from repro.sanitizer.oracle import run_oracle

        M = repro.symbol("M")

        @repro.program
        def work(A: repro.float64[M], B: repro.float64[M]):
            B[:] = A * 2.0 + 1.0

        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            report = run_oracle(work, symbols={"M": 256}, seed=0)
        assert report.verdict == "ok", report.stages

    def test_oracle_reduction_under_threads(self):
        from repro.sanitizer.oracle import run_oracle

        M = repro.symbol("M")

        @repro.program
        def total(A: repro.float64[M], out: repro.float64[1]):
            out[0] = np.sum(A)

        with Config.override(device__cpu_threads=4, parallel__min_work=0):
            report = run_oracle(total, symbols={"M": 256}, seed=1)
        assert report.verdict == "ok", report.stages
