"""Differential fuzzer: corpus replay, generator/mutation determinism,
shrinker minimality, and unit regressions for the fuzz-found bug crop."""

import random

import numpy as np
import pytest

import repro
from repro.codegen.support import dim_length, make_slice, store_aligned
from repro.frontend.astutils import UnsupportedFeature
from repro.fuzz.gen import (
    GenCase,
    ReduceStmt,
    ReturnStmt,
    SliceStmt,
    generate_case,
    render_module,
)
from repro.fuzz.mutate import DEFAULT_VARIANT, mutate_case, variant_for
from repro.fuzz.runner import run_gen_case, run_source_case
from repro.fuzz.shrink import (
    _without_stmt,
    corpus_files,
    load_corpus_entry,
    shrink_case,
)
from repro.runtime.parallel import _chunk_bounds

CORPUS = corpus_files("tests/fuzz_corpus")


# ---------------------------------------------------------------------------
# Corpus replay: every committed repro must stay fixed
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("path", CORPUS, ids=[p.split("/")[-1] for p in CORPUS])
def test_corpus_replays_clean(path):
    entry = load_corpus_entry(path)
    result = run_source_case(
        entry["module"], entry["arrays"], entry.get("scalars", ()),
        entry["seed"], variant=entry.get("variant"))
    assert result.verdict == "ok", \
        f"{path}: {result.mismatches or result.stages}"


def test_corpus_is_nonempty():
    # the PR contract: at least 3 fuzz-found bugs with committed repros
    assert len(CORPUS) >= 3


# ---------------------------------------------------------------------------
# Generator: determinism and validity
# ---------------------------------------------------------------------------

def test_generator_deterministic():
    for seed in (0, 1, 17, 68, 93):
        a = render_module(generate_case(seed))
        b = render_module(generate_case(seed))
        assert a == b


def test_generated_cases_are_valid():
    for seed in range(30):
        case = generate_case(seed)
        assert case.is_valid(), f"seed {seed} generated an invalid case"
        assert isinstance(case.stmts[-1], ReturnStmt)


def test_mutation_deterministic_and_valid():
    for seed in range(30):
        case = generate_case(seed)
        a = mutate_case(case, random.Random(f"m-{seed}"))
        b = mutate_case(case, random.Random(f"m-{seed}"))
        assert render_module(a) == render_module(b)
        assert a.is_valid()


def test_mutation_rank_safety():
    """A mutation must not change a reduce's output shape while a later
    statement consumes the temp — the *reference* would crash (e.g.
    slicing a scalar), yielding an invalid case instead of a finding."""
    from repro.fuzz.gen import ArraySpec

    base = GenCase(seed=0, sizes={"n0": 4})
    base.args = [ArraySpec("u", ("n0",))]
    reduce_stmt = ReduceStmt(dest="t0", src="u", op="mean", axis=-1,
                             keepdims=True, src_dims=("n0",))
    base.stmts = [
        reduce_stmt,
        SliceStmt(dest="t1", src="t0", mode="desc", size=1),
        ReturnStmt(value="t1"),
    ]
    assert base.is_valid()
    for trial in range(200):
        mutated = mutate_case(base, random.Random(f"rank-{trial}"))
        red = mutated.stmts[0]
        assert isinstance(red, ReduceStmt)
        assert red.out_dims() != (), \
            f"trial {trial}: mutation made a consumed reduce scalar"


def test_variant_schedule_deterministic():
    rng_a, rng_b = random.Random("v"), random.Random("v")
    for index in range(20):
        assert variant_for(index, rng_a) == variant_for(index, rng_b)
    assert set(DEFAULT_VARIANT) == {"threads", "sanitize", "govern", "cache"}


# ---------------------------------------------------------------------------
# Shrinker: 1-minimality under a synthetic predicate
# ---------------------------------------------------------------------------

def test_shrinker_minimal_under_synthetic_predicate():
    case = generate_case(3)

    def failing(trial):
        return any(isinstance(s, ReduceStmt) for s in trial.stmts)

    shrunk = shrink_case(case, failing)
    assert failing(shrunk)
    assert shrunk.is_valid()
    # 1-minimal: no single statement can be removed while still failing
    for index in range(len(shrunk.stmts)):
        trial = _without_stmt(shrunk, index)
        assert trial is None or not failing(trial)
    # sizes shrunk to the floor
    assert all(v == 2 for v in shrunk.sizes.values())


# ---------------------------------------------------------------------------
# Oracle agreement: a small always-on differential smoke slice
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", [0, 1, 2])
def test_oracle_agreement_smoke(seed):
    result = run_gen_case(generate_case(seed))
    assert result.verdict == "ok", result.mismatches or result.stages


# ---------------------------------------------------------------------------
# Bug crop regressions (unit level)
# ---------------------------------------------------------------------------

class TestNegativeAxis:
    """Bug: method-form positional axis was ignored and out-of-range axes
    silently wrapped via ``%``; negative axes must normalize correctly."""

    def test_1d(self):
        @repro.program
        def prog(u: repro.float64[5]):
            return np.sum(u, axis=-1)

        u = np.arange(5.0)
        assert np.allclose(prog(u=u), u.sum())

    def test_2d_all_axes(self):
        A = np.arange(12.0).reshape(3, 4)
        for axis in (-2, -1, 0, 1):
            @repro.program
            def prog(A: repro.float64[3, 4]):
                return np.max(A, axis=axis)

            assert np.allclose(prog(A=A.copy()), A.max(axis=axis)), axis

    def test_3d(self):
        T = np.arange(24.0).reshape(2, 3, 4)
        for axis in (-3, -2, -1):
            @repro.program
            def prog(T: repro.float64[2, 3, 4]):
                return np.sum(T, axis=axis)

            assert np.allclose(prog(T=T.copy()), T.sum(axis=axis)), axis

    def test_method_form_positional_axis(self):
        A = np.arange(6.0).reshape(2, 3)

        @repro.program
        def prog(A: repro.float64[2, 3]):
            return A.sum(0)

        assert np.allclose(prog(A=A.copy()), A.sum(0))

    def test_out_of_range_axis_rejected(self):
        with pytest.raises((UnsupportedFeature, Exception)) as exc:
            @repro.program
            def prog(A: repro.float64[2, 3]):
                return np.sum(A, axis=2)

            prog(A=np.zeros((2, 3)))
        assert "axis" in str(exc.value)

    def test_keepdims(self):
        A = np.arange(6.0).reshape(2, 3)

        @repro.program
        def prog(A: repro.float64[2, 3]):
            return np.min(A, axis=0, keepdims=True)

        out = prog(A=A.copy())
        assert np.asarray(out).shape == (1, 3)
        assert np.allclose(out, A.min(axis=0, keepdims=True))

    def test_keepdims_chain_reduce(self):
        # shrunk shape of fuzz case 68: reduce of a keepdims result whose
        # output memlet is a single point
        A = np.arange(6.0).reshape(2, 3)

        @repro.program
        def prog(A: repro.float64[2, 3], out: repro.float64[1]):
            t = np.sum(A, axis=0, keepdims=True)
            out[:] = np.max(t, axis=-1)

        out = np.zeros(1)
        prog(A=A.copy(), out=out)
        assert np.allclose(out, A.sum(axis=0, keepdims=True).max(axis=-1))


class TestStoreAligned:
    """Bug: dead transpose branch plus a silent reshape that masked axis
    mis-permutations as garbage stores."""

    def test_permuted_store(self):
        dst = np.zeros((3, 4))
        value = np.arange(12.0).reshape(4, 3)  # canonical (axis1, axis0)
        store_aligned(dst, (slice(None), slice(None)), value, [1, 0], (4, 3))
        assert np.allclose(dst, value.T)

    def test_incompatible_shape_raises(self):
        dst = np.zeros((3, 4))
        with pytest.raises(ValueError, match="store_aligned"):
            store_aligned(dst, (slice(None), slice(None)),
                          np.zeros((2, 5)), [0, 1], (2, 5))

    def test_size1_reshape_still_allowed(self):
        dst = np.zeros((1, 1))
        store_aligned(dst, (slice(None), slice(None)),
                      np.array([7.0]).reshape(1, 1), [0, 1], (1, 1))
        assert dst[0, 0] == 7.0


class TestMemletSqueezeRoundTrip:
    """Bug: ``Memlet.squeeze`` was dropped by JSON serialization, so a
    warm-cache-rehydrated module fed *unsqueezed* views to library nodes
    (cholesky's dot products saw (1, k) rows instead of (k,) vectors)."""

    def test_squeeze_survives_roundtrip(self):
        from repro.ir.memlet import Memlet

        m = Memlet("A", "i, 0:j", squeeze=(0,))
        rt = Memlet.from_json(m.to_json())
        assert rt.squeeze == (0,)
        assert str(rt.subset) == str(m.subset)

    def test_sdfg_roundtrip_preserves_squeeze(self):
        from repro.ir import serialize

        @repro.program
        def prog(A: repro.float64[3, 3], out: repro.float64[3]):
            for i in range(3):
                out[i] = A[i, :] @ A[i, :]

        sdfg = prog.to_sdfg()
        rt = serialize.sdfg_from_json(sdfg.to_json())
        originals = sorted(
            (e.memlet.data, e.memlet.squeeze)
            for state in sdfg.states() for e in state.edges()
            if e.memlet.subset is not None and e.memlet.squeeze)
        restored = sorted(
            (e.memlet.data, e.memlet.squeeze)
            for state in rt.states() for e in state.edges()
            if e.memlet.subset is not None and e.memlet.squeeze)
        assert originals and originals == restored


class TestZeroTrip:
    """Bug: zero-trip map ranges produced negative extents and bogus
    thread chunks."""

    def test_dim_length_clamps(self):
        assert dim_length(0, -1, 1) == 0
        assert dim_length(0, -2, 1) == 0
        assert dim_length(0, 4, 1) == 5
        assert dim_length(4, 0, -1) == 5

    def test_chunk_bounds_empty(self):
        assert _chunk_bounds(0, 4) == []
        assert _chunk_bounds(-3, 4) == []
        assert _chunk_bounds(5, 2) == [(0, 3), (3, 5)]

    def test_triangular_map_program(self):
        @repro.program
        def prog(A: repro.float64[4, 4]):
            for it in range(4):
                for p in repro.map[0:it]:
                    A[it, p] = A[it, p] * 2.0 + 1.0

        A = np.ones((4, 4))
        ref = np.ones((4, 4))
        for it in range(4):
            for p in range(it):
                ref[it, p] = ref[it, p] * 2.0 + 1.0
        prog(A=A)
        assert np.allclose(A, ref)


class TestSliceEmission:
    """Bug: descending and zero-trip slices mis-converted to exclusive
    NumPy slices (``end + 1`` crossing zero selects nearly everything)."""

    def test_make_slice_descending_to_zero(self):
        x = np.arange(5)
        assert list(x[make_slice(1, 0, 4, 0, -1)]) == [4, 3, 2, 1, 0]

    def test_make_slice_empty_ascending(self):
        x = np.arange(5)
        assert list(x[make_slice(1, 0, 0, -1, 1)]) == []

    def test_make_slice_empty_descending(self):
        x = np.arange(5)
        assert list(x[make_slice(1, 0, 1, 2, -1)]) == []

    def test_descending_slice_program(self):
        @repro.program
        def prog(u: repro.float64[5]):
            t = u[4:0:-1]
            return np.sum(t * t)

        u = np.arange(5.0)
        assert np.allclose(prog(u=u.copy()), np.sum(u[4:0:-1] ** 2))

    def test_full_reverse_program(self):
        @repro.program
        def prog(u: repro.float64[5], out: repro.float64[5]):
            out[:] = u[::-1]

        u = np.arange(5.0)
        out = np.zeros(5)
        prog(u=u.copy(), out=out)
        assert np.allclose(out, u[::-1])
