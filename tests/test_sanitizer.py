"""Tests for the SDFG sanitizer: static race/bounds analysis, runtime
guards, the differential-testing oracle with pass bisection, and the
static gate wired into the transactional transformation machinery."""

import json

import numpy as np
import pytest

import repro
from repro.config import Config
from repro.ir import SDFG, AccessNode, Memlet, Tasklet
from repro.ir.validation import collect_validation_errors
from repro.runtime.executor import run_sdfg
from repro.runtime.wcr import WCR_APPLY
from repro.sanitizer import (IN_BOUNDS, OUT_OF_BOUNDS, RACE, RACE_FREE,
                             UNPROVED, SanitizerError, check_bounds,
                             check_races, static_issue_keys)
from repro.sanitizer import guards
from repro.sanitizer.races import analyze_map
from repro.symbolic import Symbol

N = Symbol("N")


# ---------------------------------------------------------------------------
# graph builders
# ---------------------------------------------------------------------------

def elementwise_sdfg(rng="0:N", out_subset="i"):
    sdfg = SDFG("elementwise")
    sdfg.add_array("A", (N,), repro.float64)
    sdfg.add_array("B", (N,), repro.float64)
    state = sdfg.add_state("s0")
    state.add_mapped_tasklet(
        "scale", {"i": rng},
        {"__in": Memlet("A", "i")}, "__out = 2 * __in",
        {"__out": Memlet("B", out_subset)})
    return sdfg


def reduction_sdfg(wcr):
    """Map over 0:8 accumulating (or plainly writing) into B[0]."""
    sdfg = SDFG("reduce")
    sdfg.add_array("A", (8,), repro.float64)
    sdfg.add_array("B", (1,), repro.float64)
    state = sdfg.add_state("s0")
    state.add_mapped_tasklet(
        "acc", {"i": "0:8"},
        {"__in": Memlet("A", "i")}, "__out = __in",
        {"__out": Memlet("B", "0", wcr=wcr)})
    return sdfg


def single_map_verdict(sdfg):
    verdicts = check_races(sdfg)
    assert len(verdicts) == 1
    return verdicts[0]


# ---------------------------------------------------------------------------
# static race detection
# ---------------------------------------------------------------------------

class TestRaceDetector:
    def test_elementwise_map_race_free(self):
        assert single_map_verdict(elementwise_sdfg()).verdict == RACE_FREE

    @pytest.mark.parametrize("wcr", sorted(WCR_APPLY))
    def test_every_wcr_op_race_free(self, wcr):
        # satellite: every runtime WCR reduction op must be proven safe
        verdict = single_map_verdict(reduction_sdfg(wcr))
        assert verdict.verdict == RACE_FREE
        assert verdict.conflicts == []

    def test_same_map_without_wcr_is_race(self):
        verdict = single_map_verdict(reduction_sdfg(None))
        assert verdict.verdict == RACE
        assert any(c.kind == "self" for c in verdict.conflicts)

    def test_injected_write_write_conflict(self):
        sdfg = SDFG("dual_writer")
        sdfg.add_array("A", (8,), repro.float64)
        sdfg.add_array("B", (8,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "dup", {"i": "0:8"},
            {"__in": Memlet("A", "i")}, "__o1 = __in\n__o2 = -__in",
            {"__o1": Memlet("B", "i"), "__o2": Memlet("B", "i")})
        verdict = single_map_verdict(sdfg)
        assert verdict.verdict == RACE
        assert any(c.kind == "write-write" for c in verdict.conflicts)

    def test_stencil_shift_read_write_race(self):
        sdfg = SDFG("shift")
        sdfg.add_array("B", (9,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "sh", {"i": "0:8"},
            {"__in": Memlet("B", "i + 1")}, "__out = __in",
            {"__out": Memlet("B", "i")})
        verdict = single_map_verdict(sdfg)
        assert verdict.verdict == RACE
        assert any(c.kind == "read-write" for c in verdict.conflicts)

    def test_dynamic_write_unproved(self):
        sdfg = SDFG("dynamic")
        sdfg.add_array("A", (8,), repro.float64)
        sdfg.add_array("B", (8,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "dyn", {"i": "0:8"},
            {"__in": Memlet("A", "i")}, "__out = __in",
            {"__out": Memlet("B", "i", dynamic=True)})
        assert single_map_verdict(sdfg).verdict == UNPROVED

    @pytest.mark.parametrize("name", ["atax", "bicg", "gemm", "mvt"])
    def test_corpus_native_reductions_race_free(self, name):
        # acceptance: all WCR-based reductions in the corpus prove race-free
        from repro.bench import registry

        bench = registry.get(name)
        sdfg = bench.program.to_sdfg().clone()
        sdfg.simplify()
        sdfg.expand_library_nodes(implementation="native")
        wcr_maps = 0
        from repro.ir.nodes import MapEntry

        for state in sdfg.states():
            for node in state.nodes():
                if not isinstance(node, MapEntry):
                    continue
                verdict = analyze_map(state, node, sdfg)
                writes_wcr = any(
                    e.memlet is not None and e.memlet.wcr is not None
                    for e in state.in_edges(node.exit_node))
                if writes_wcr:
                    wcr_maps += 1
                assert verdict.verdict == RACE_FREE, (
                    f"{name}/{node.map.label}: {verdict.conflicts}")
        assert wcr_maps >= 1, f"{name}: native expansion produced no WCR maps"


# ---------------------------------------------------------------------------
# static bounds checking
# ---------------------------------------------------------------------------

class TestBoundsChecker:
    def test_elementwise_all_in_bounds(self):
        verdicts = check_bounds(elementwise_sdfg())
        assert verdicts and all(v.verdict == IN_BOUNDS for v in verdicts)

    def test_provable_out_of_bounds(self):
        sdfg = SDFG("oob")
        sdfg.add_array("A", (4,), repro.float64)
        sdfg.add_array("B", (8,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "over", {"i": "0:8"},
            {"__in": Memlet("A", "i")}, "__out = __in",
            {"__out": Memlet("B", "i")})
        oob = [v for v in check_bounds(sdfg) if v.verdict == OUT_OF_BOUNDS]
        assert oob and all(v.container == "A" for v in oob)

    def test_unbounded_symbol_unproved(self):
        sdfg = SDFG("symidx")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("b", (1,), repro.float64)
        state = sdfg.add_state("s0")
        read = state.add_access("A")
        write = state.add_access("b")
        tasklet = state.add_tasklet("pick", {"__in"}, {"__out"},
                                    "__out = __in")
        state.add_edge(read, None, tasklet, "__in", Memlet("A", "S"))
        state.add_edge(tasklet, "__out", write, None, Memlet("b", "0"))
        verdicts = {v.subset: v.verdict for v in check_bounds(sdfg)}
        assert verdicts["S"] == UNPROVED

    def test_oob_feeds_collect_validation_errors(self):
        sdfg = SDFG("oob_collect")
        sdfg.add_array("A", (4,), repro.float64)
        sdfg.add_array("B", (8,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "over", {"i": "0:8"},
            {"__in": Memlet("A", "i")}, "__out = __in",
            {"__out": Memlet("B", "i")})
        errors = collect_validation_errors(sdfg)
        assert any("provably out of bounds" in str(e) for e in errors)
        # ... but plain validation stays structural: the graph is well-formed
        sdfg.validate()


# ---------------------------------------------------------------------------
# validation satellites: full collection + symmetric connector checks
# ---------------------------------------------------------------------------

class TestValidationSatellites:
    def test_collects_multiple_faults_in_one_state(self):
        sdfg = SDFG("multi_fault")
        state = sdfg.add_state("s0")
        state.add_node(AccessNode("ghost1"))
        state.add_node(AccessNode("ghost2"))
        state.add_node(Tasklet("t", set(), set(), ""))
        errors = collect_validation_errors(sdfg)
        messages = " ".join(str(e) for e in errors)
        assert len(errors) == 3
        assert "ghost1" in messages and "ghost2" in messages
        assert "empty code" in messages

    def test_mapexit_out_connector_prefix_checked(self):
        from repro.symbolic import Range

        sdfg = SDFG("bad_exit_conn")
        sdfg.add_state("s0")
        state = next(iter(sdfg.states()))
        _entry, exit_ = state.add_map("m", ["i"], Range([(0, 7, 1)]))
        exit_.add_out_connector("B_out")  # wrong: must be OUT_*
        errors = collect_validation_errors(sdfg)
        assert any("must start with OUT_" in str(e) for e in errors)

    def test_scope_connector_pairing_checked(self):
        from repro.symbolic import Range

        sdfg = SDFG("unpaired_conn")
        sdfg.add_state("s0")
        state = next(iter(sdfg.states()))
        entry, exit_ = state.add_map("m", ["i"], Range([(0, 7, 1)]))
        entry.add_in_connector("IN_A")    # no matching OUT_A
        exit_.add_out_connector("OUT_B")  # no matching IN_B
        messages = " ".join(str(e) for e in collect_validation_errors(sdfg))
        assert "IN_A has no matching OUT_A" in messages
        assert "OUT_B has no matching IN_B" in messages

    def test_validate_still_raises_first_error(self):
        from repro.ir.validation import InvalidSDFGError

        sdfg = SDFG("multi_fault2")
        state = sdfg.add_state("s0")
        state.add_node(AccessNode("ghost1"))
        state.add_node(AccessNode("ghost2"))
        with pytest.raises(InvalidSDFGError, match="ghost1"):
            sdfg.validate()


# ---------------------------------------------------------------------------
# runtime guards
# ---------------------------------------------------------------------------

class TestGuardPrimitives:
    def test_parse_modes(self):
        assert guards.parse_modes(None) == frozenset()
        assert guards.parse_modes("off") == frozenset()
        assert guards.parse_modes(True) == frozenset(guards.GUARD_MODES)
        assert guards.parse_modes("bounds,nan") == frozenset({"bounds", "nan"})
        with pytest.raises(ValueError):
            guards.parse_modes("bounds,telepathy")

    def test_check_index_raises_outside_shape(self):
        with pytest.raises(SanitizerError) as info:
            guards.check_index("A", (4,), (4,))
        assert info.value.kind == "bounds"
        with pytest.raises(SanitizerError):
            guards.check_index("A", (4, 4), (slice(0, 4), slice(2, 6)))
        guards.check_index("A", (4,), (3,))  # in bounds: no raise

    def test_check_value_raises_on_nonfinite(self):
        with pytest.raises(SanitizerError) as info:
            guards.check_value("B", float("inf"))
        assert info.value.kind == "nan"
        guards.check_value("B", 1.5)
        guards.check_value("B", np.arange(3))  # ints: never flagged

    def test_guards_inactive_by_default(self):
        assert guards._ACTIVE is None
        # fast path: no exception even for a wildly bad access
        guards.guard_read("A", np.zeros(2), (99,))

    def test_sanitize_context_restores_state(self):
        with guards.sanitize("bounds", program="p"):
            assert guards._ACTIVE is not None
            assert guards._ACTIVE.modes == frozenset({"bounds"})
        assert guards._ACTIVE is None


class TestInterpreterGuards:
    def test_nan_guard_raises(self):
        sdfg = SDFG("poison")
        sdfg.add_array("A", (4,), repro.float64)
        sdfg.add_array("B", (4,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "div", {"i": "0:4"},
            {"__in": Memlet("A", "i")}, "__out = __in / 0.0",
            {"__out": Memlet("B", "i")})
        with guards.sanitize("nan", program="poison"):
            with pytest.raises(SanitizerError) as info:
                with np.errstate(divide="ignore"):
                    run_sdfg(sdfg, A=np.ones(4), B=np.zeros(4))
        assert info.value.kind == "nan"

    def test_bounds_guard_raises(self):
        sdfg = SDFG("overrun")
        sdfg.add_array("A", (4,), repro.float64)
        sdfg.add_array("B", (8,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "over", {"i": "0:8"},
            {"__in": Memlet("A", "i")}, "__out = __in",
            {"__out": Memlet("B", "i")})
        with guards.sanitize("bounds", program="overrun"):
            with pytest.raises(SanitizerError) as info:
                run_sdfg(sdfg, A=np.zeros(4), B=np.zeros(8))
        assert info.value.kind == "bounds"
        assert info.value.container == "A"

    def test_guards_off_no_interference(self):
        sdfg = elementwise_sdfg()
        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        run_sdfg(sdfg, A=A, B=B, N=4)
        assert np.allclose(B, 2 * A)


class TestCompiledGuards:
    def test_plain_module_is_guard_free(self):
        from repro.codegen import compile_sdfg

        compiled = compile_sdfg(elementwise_sdfg())
        assert "__guard" not in compiled.source
        assert not compiled.sanitized

    def test_sanitized_module_checks_writes(self):
        from repro.codegen import compile_sdfg

        sdfg = SDFG("poisonc")
        sdfg.add_array("A", (4,), repro.float64)
        sdfg.add_array("B", (4,), repro.float64)
        state = sdfg.add_state("s0")
        state.add_mapped_tasklet(
            "div", {"i": "0:4"},
            {"__in": Memlet("A", "i")}, "__out = __in / 0.0",
            {"__out": Memlet("B", "i")})
        compiled = compile_sdfg(sdfg, sanitize=True)
        assert "__guard_write" in compiled.source
        with guards.sanitize("nan", program="poisonc"):
            with pytest.raises(SanitizerError):
                with np.errstate(divide="ignore"):
                    compiled(A=np.ones(4), B=np.zeros(4))
        # without an active guard context the hooks are no-ops
        with np.errstate(divide="ignore"):
            compiled(A=np.ones(4), B=np.zeros(4))


# ---------------------------------------------------------------------------
# @program integration + degrade chain
# ---------------------------------------------------------------------------

class TestProgramIntegration:
    def test_sanitize_kwarg_clean_run(self):
        @repro.program(sanitize="bounds,nan")
        def scale(A: repro.float64[8], B: repro.float64[8]):
            for i in repro.map[0:8]:
                B[i] = A[i] * 2.0

        A = np.arange(8, dtype=np.float64)
        B = np.zeros(8)
        scale(A, B)
        assert np.allclose(B, 2 * A)
        compiled = scale.compile()
        assert compiled.sanitized and "__guard" in compiled.source

    def test_off_by_default_compiles_guard_free(self):
        @repro.program
        def scale(A: repro.float64[8], B: repro.float64[8]):
            for i in repro.map[0:8]:
                B[i] = A[i] * 2.0

        compiled = scale.compile()
        assert "__guard" not in compiled.source
        assert guards._ACTIVE is None

    def test_config_key_enables_guards(self):
        @repro.program
        def scale(A: repro.float64[8], B: repro.float64[8]):
            for i in repro.map[0:8]:
                B[i] = A[i] * 2.0

        with Config.override(sanitize__mode="bounds,nan"):
            compiled = scale.compile()
            assert compiled.sanitized

    def test_sanitizer_error_triggers_degrade_chain(self):
        @repro.program(sanitize="nan")
        def poison(A: repro.float64[4], B: repro.float64[4]):
            for i in range(4):
                B[i] = A[i] / 0.0

        A = np.ones(4)
        B = np.zeros(4)
        with Config.override(resilience__mode="degrade"):
            with np.errstate(divide="ignore"), pytest.warns(RuntimeWarning):
                poison(A, B)
        # compiled and interpreter tiers both tripped the NaN guard; the
        # pure-Python tier (no guard hooks) completed the call
        stages = [a["stage"] for a in poison.last_attempts]
        assert stages == ["compiled", "interpreter", "python"]
        assert poison.last_attempts[-1]["ok"]
        errors = [r.error for r in poison.failure_report.degradations]
        assert errors and all(isinstance(e, SanitizerError) for e in errors)
        assert np.all(np.isinf(B))


# ---------------------------------------------------------------------------
# static gate on transactional transformation application
# ---------------------------------------------------------------------------

class _DropWCR:
    """A deliberately unsound 'optimization': strips WCR off every memlet
    (turning a safe reduction into a write-write race)."""

    name = "DropWCR"

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            for edge in state.edges():
                if edge.memlet is not None and edge.memlet.wcr is not None:
                    yield edge

    @classmethod
    def apply_repeated(cls, sdfg, max_applications=None, **options):
        count = 0
        for edge in list(cls.matches(sdfg)):
            edge.memlet.wcr = None
            count += 1
        return count


def _wcr_edges(sdfg):
    return [e for state in sdfg.states() for e in state.edges()
            if e.memlet is not None and e.memlet.wcr is not None]


class TestTransactionalGate:
    def test_static_issue_keys(self):
        assert static_issue_keys(reduction_sdfg("sum")) == frozenset()
        keys = static_issue_keys(reduction_sdfg(None))
        assert any(k.startswith("race:") for k in keys)

    def test_race_introducing_pass_rolled_back(self):
        from repro.resilience import (FailureReport, ResilienceWarning,
                                      transactional_apply)

        sdfg = reduction_sdfg("sum")
        report = FailureReport()
        with pytest.warns(ResilienceWarning):
            applied = transactional_apply(sdfg, _DropWCR, report=report)
        assert applied == 0
        assert _wcr_edges(sdfg), "rollback must restore the WCR edges"
        assert len(report.transformation_failures) == 1
        assert isinstance(report.transformation_failures[0].error,
                          SanitizerError)

    def test_gate_disabled_lets_pass_through(self):
        from repro.resilience import transactional_apply

        sdfg = reduction_sdfg("sum")
        with Config.override(sanitize__check_transforms=False):
            applied = transactional_apply(sdfg, _DropWCR)
        assert applied > 0
        assert not _wcr_edges(sdfg)


# ---------------------------------------------------------------------------
# differential oracle + bisection
# ---------------------------------------------------------------------------

class TestOracle:
    def test_lazy_oracle_export_fresh_process(self):
        # regression: the PEP 562 hook must not recurse when the from-import
        # machinery probes the package for the not-yet-imported submodule
        import os
        import subprocess
        import sys

        src = os.path.dirname(os.path.dirname(repro.__file__))
        proc = subprocess.run(
            [sys.executable, "-c",
             "from repro.sanitizer import run_oracle, AUTOOPT_STEPS\n"
             "import repro.sanitizer\n"
             "assert repro.sanitizer.oracle.run_oracle is run_oracle\n"],
            capture_output=True, text=True, timeout=120,
            env=dict(os.environ, PYTHONPATH=src))
        assert proc.returncode == 0, proc.stderr[-1000:]

    def test_tolerances(self):
        from repro.sanitizer.oracle import compare_values, tolerance_for

        assert tolerance_for(np.int64) == (0.0, 0.0)
        rtol32, _ = tolerance_for(np.float32)
        rtol64, _ = tolerance_for(np.float64)
        assert rtol64 < rtol32
        assert compare_values(np.ones(3), np.ones(3)) is None
        assert compare_values(np.ones(3), np.zeros(3)) is not None
        assert "shape" in compare_values(np.ones(3), np.ones(4))

    def test_generate_inputs_seeded(self):
        from repro.sanitizer.oracle import generate_inputs

        sdfg = elementwise_sdfg()
        one = generate_inputs(sdfg, {"N": 6}, seed=3)
        two = generate_inputs(sdfg, {"N": 6}, seed=3)
        other = generate_inputs(sdfg, {"N": 6}, seed=4)
        assert np.array_equal(one["A"], two["A"])
        assert not np.array_equal(one["A"], other["A"])
        assert one["A"].shape == (6,)

    def test_bisect_passes_names_breaker(self):
        from repro.sanitizer.oracle import bisect_passes

        def nop(obj):
            pass

        def breaker(obj):
            obj["v"] = 3

        steps = [("first", nop), ("breaker", breaker), ("last", nop)]
        culprit = bisect_passes(lambda: {"v": 2}, steps,
                                lambda obj: obj["v"] == 2)
        assert culprit == "breaker"
        assert bisect_passes(lambda: {"v": 2}, [("a", nop)],
                             lambda obj: True) is None
        assert bisect_passes(lambda: {"v": 3}, steps,
                             lambda obj: obj["v"] == 2) == "<base>"

    def test_run_oracle_ok(self):
        @repro.program
        def double(A: repro.float64[8], B: repro.float64[8]):
            for i in repro.map[0:8]:
                B[i] = A[i] * 2.0

        from repro.sanitizer.oracle import run_oracle

        report = run_oracle(double, seed=0)
        assert report.verdict == "ok", report.stages
        assert report.culprit is None

    def test_run_oracle_bisects_broken_transformation(self):
        @repro.program
        def double(A: repro.float64[8], B: repro.float64[8]):
            for i in repro.map[0:8]:
                B[i] = A[i] * 2.0

        from repro.sanitizer.oracle import run_oracle

        def miscompile(sdfg):
            # deliberately breaking 'transformation': rewrites the tasklet
            for state in sdfg.states():
                for node in state.nodes():
                    if isinstance(node, Tasklet):
                        node.code = node.code.replace("2.0", "3.0")

        steps = [("harmless", lambda s: None),
                 ("bad_rewrite", miscompile),
                 ("harmless_too", lambda s: None)]
        report = run_oracle(double, seed=0, steps=steps)
        assert report.verdict == "mismatch"
        assert report.culprit == "bad_rewrite"
        assert report.stages["compiled"] == "ok"


# ---------------------------------------------------------------------------
# CLI sweep
# ---------------------------------------------------------------------------

class TestSweepCLI:
    def test_sweep_writes_verdict_json(self, tmp_path):
        from repro.sanitizer.__main__ import SCHEMA, main

        out = tmp_path / "SANITIZER.json"
        rc = main(["--seed", "0", "--corpus", "gemm", "--output", str(out)])
        assert rc == 0
        document = json.loads(out.read_text())
        assert document["schema"] == SCHEMA
        entry = document["programs"]["gemm"]
        assert entry["oracle"]["verdict"] == "ok"
        assert entry["races"]["counts"][RACE] == 0
        assert entry["races_native"]["counts"][RACE] == 0
        assert entry["bounds"]["counts"][OUT_OF_BOUNDS] == 0
        assert document["summary"]["races"] == 0
