"""Resilience-layer tests: transactional transformations, graceful
degradation, and fault injection for the simulated MPI runtime."""

import time
import warnings

import numpy as np
import pytest

import repro
from repro import Config
from repro.ir import SDFG, AccessNode, InvalidSDFGError, Memlet
from repro.resilience import (FailureReport, OscillationDetector, Quarantine,
                              ResilienceWarning, SDFGSnapshot,
                              sdfg_fingerprint, transactional_apply)
from repro.runtime.executor import run_sdfg
from repro.simmpi import (DeadlockError, FaultPlan, Request, SimMPIError,
                          run_spmd)
from repro.transformations import pipeline
from repro.transformations.base import Transformation

N = repro.symbol("N")


def scale_sdfg():
    """B[i] = 2 * A[i] over a symbolic range."""
    sdfg = SDFG("scale")
    sdfg.add_array("A", (N,), repro.float64)
    sdfg.add_array("B", (N,), repro.float64)
    state = sdfg.add_state("s0")
    state.add_mapped_tasklet(
        "scale", {"i": "0:N"},
        {"__in": Memlet("A", "i")}, "__out = 2 * __in",
        {"__out": Memlet("B", "i")})
    return sdfg


class ExplodingPass(Transformation):
    """Always matches; raises while applying."""

    name = "ExplodingPass"
    applications = 0

    @classmethod
    def matches(cls, sdfg, **options):
        yield "boom"

    @classmethod
    def apply_match(cls, sdfg, match, **options):
        ExplodingPass.applications += 1
        raise RuntimeError("kaboom")


class CorruptingPass(Transformation):
    """Leaves an invalid SDFG behind (access node without a container)."""

    name = "CorruptingPass"

    @classmethod
    def matches(cls, sdfg, **options):
        for state in sdfg.states():
            if not any(isinstance(n, AccessNode) and n.data == "__corrupt"
                       for n in state.nodes()):
                yield state
                return

    @classmethod
    def apply_match(cls, sdfg, state, **options):
        state.add_node(AccessNode("__corrupt"))


class AddMarkerPass(Transformation):
    name = "AddMarkerPass"

    @classmethod
    def matches(cls, sdfg, **options):
        if "__osc" not in sdfg.arrays:
            yield True

    @classmethod
    def apply_match(cls, sdfg, match, **options):
        sdfg.add_transient("__osc", (1,), repro.float64)


class RemoveMarkerPass(Transformation):
    name = "RemoveMarkerPass"

    @classmethod
    def matches(cls, sdfg, **options):
        if "__osc" in sdfg.arrays:
            yield True

    @classmethod
    def apply_match(cls, sdfg, match, **options):
        del sdfg.arrays["__osc"]


class GrowingPass(Transformation):
    """Never reaches a fixed point: every application adds a new container."""

    name = "GrowingPass"
    counter = 0

    @classmethod
    def matches(cls, sdfg, **options):
        yield True

    @classmethod
    def apply_match(cls, sdfg, match, **options):
        GrowingPass.counter += 1
        sdfg.add_transient(f"__grow{GrowingPass.counter}", (1,), repro.float64)


# ---------------------------------------------------------------------------
# transactional pipeline
# ---------------------------------------------------------------------------

class TestTransactionalPipeline:
    def test_raising_pass_rolled_back(self):
        sdfg = scale_sdfg()
        fingerprint = sdfg_fingerprint(sdfg)
        report = FailureReport()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            applied = transactional_apply(sdfg, ExplodingPass, report=report)
        assert applied == 0
        assert sdfg_fingerprint(sdfg) == fingerprint
        assert len(report.transformation_failures) == 1
        record = report.transformation_failures[0]
        assert record.subject == "ExplodingPass"
        assert record.action == "rolled-back"
        assert "kaboom" in str(record.error)

    def test_corrupting_pass_rolled_back_and_graph_valid(self):
        sdfg = scale_sdfg()
        report = FailureReport()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            applied = transactional_apply(sdfg, CorruptingPass, report=report)
        assert applied == 0
        sdfg.validate()  # corruption was rolled back
        assert not any(isinstance(n, AccessNode) and n.data == "__corrupt"
                       for s in sdfg.states() for n in s.nodes())
        assert isinstance(report.records[0].error, InvalidSDFGError)

    def test_rolled_back_sdfg_still_executes(self):
        sdfg = scale_sdfg()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            transactional_apply(sdfg, CorruptingPass)
        A = np.arange(5, dtype=np.float64)
        B = np.zeros(5)
        run_sdfg(sdfg, A=A, B=B)
        assert np.allclose(B, 2 * A)

    def test_program_correct_despite_buggy_pipeline_pass(self, monkeypatch):
        monkeypatch.setattr(
            pipeline, "SIMPLIFY_TRANSFORMATIONS",
            pipeline.SIMPLIFY_TRANSFORMATIONS + [ExplodingPass, CorruptingPass])

        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 3.0

        A = np.arange(8, dtype=np.float64)
        B = np.zeros(8)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            prog(A=A, B=B)
        assert np.allclose(B, A * 3)

    def test_quarantine_after_repeated_failures(self):
        sdfg = scale_sdfg()
        quarantine = Quarantine(threshold=3)
        report = FailureReport()
        ExplodingPass.applications = 0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ResilienceWarning)
            for _ in range(5):
                transactional_apply(sdfg, ExplodingPass, report=report,
                                    quarantine=quarantine)
        assert quarantine.is_quarantined("ExplodingPass")
        assert ExplodingPass.applications == 3  # attempts 4 and 5 were skipped
        assert len(report.records) == 3
        assert report.records[-1].action == "quarantined"

    def test_oscillation_detected_and_named(self, monkeypatch):
        monkeypatch.setattr(pipeline, "SIMPLIFY_TRANSFORMATIONS",
                            [AddMarkerPass, RemoveMarkerPass])
        sdfg = scale_sdfg()
        with pytest.warns(ResilienceWarning,
                          match="oscillating.*AddMarkerPass, RemoveMarkerPass"):
            total = pipeline.simplify_pass(sdfg)
        assert total == 2  # one add + one remove, then the loop stops
        assert "__osc" not in sdfg.arrays

    def test_application_cap_names_runaway_pass(self, monkeypatch):
        monkeypatch.setattr(pipeline, "SIMPLIFY_TRANSFORMATIONS", [GrowingPass])
        sdfg = scale_sdfg()
        with Config.override(resilience__max_pass_applications=7):
            with pytest.warns(ResilienceWarning,
                              match="application cap.*GrowingPass"):
                total = pipeline.simplify_pass(sdfg)
        assert total == 7

    def test_autoopt_step_failure_rolled_back(self, monkeypatch):
        from repro.autoopt import auto_optimize
        from repro.transformations.dataflow.map_collapse import MapCollapse

        def boom(sdfg, **kwargs):
            raise RuntimeError("collapse exploded")

        monkeypatch.setattr(MapCollapse, "apply_repeated", staticmethod(boom))
        sdfg = scale_sdfg()
        report = FailureReport()
        with pytest.warns(ResilienceWarning, match="collapse"):
            auto_optimize(sdfg, device="CPU", report=report)
        assert any(r.kind == "optimization" and r.subject == "collapse"
                   for r in report.records)
        A = np.arange(6, dtype=np.float64)
        B = np.zeros(6)
        run_sdfg(sdfg, A=A, B=B)
        assert np.allclose(B, 2 * A)


class TestSnapshot:
    def test_restore_in_place(self):
        sdfg = scale_sdfg()
        fingerprint = sdfg_fingerprint(sdfg)
        snapshot = SDFGSnapshot.capture(sdfg)
        sdfg.add_array("X", (N,), repro.float64)
        sdfg.add_state("junk")
        snapshot.restore(sdfg)
        assert sdfg_fingerprint(sdfg) == fingerprint
        assert "X" not in sdfg.arrays
        for state in sdfg.states():
            assert state.sdfg is sdfg
        A = np.arange(5, dtype=np.float64)
        B = np.zeros(5)
        run_sdfg(sdfg, A=A, B=B)
        assert np.allclose(B, 2 * A)

    def test_restore_twice(self):
        sdfg = scale_sdfg()
        snapshot = SDFGSnapshot.capture(sdfg)
        for _ in range(2):
            sdfg.add_transient("__junk", (1,), repro.float64)
            snapshot.restore(sdfg)
            assert "__junk" not in sdfg.arrays

    def test_oscillation_detector(self):
        sdfg = scale_sdfg()
        detector = OscillationDetector()
        assert not detector.observe(sdfg)
        sdfg.add_transient("__osc", (1,), repro.float64)
        assert not detector.observe(sdfg)
        del sdfg.arrays["__osc"]
        assert detector.observe(sdfg)  # back to the first fingerprint


class TestFailureReport:
    def test_summary_and_flags(self):
        report = FailureReport()
        assert not report
        assert report.summary() == "no failures recorded"
        report.record("transformation", "SomePass", RuntimeError("x"),
                      "rolled-back")
        report.record("degradation", "prog", ValueError("y"),
                      "fell-back:python", stage="compiled")
        assert report and len(report) == 2
        assert len(report.transformation_failures) == 1
        assert len(report.degradations) == 1
        assert "SomePass" in report.summary()
        report.clear()
        assert not report

    def test_to_dict_sanitizes_numpy_exception_payloads(self):
        import json

        report = FailureReport()
        # guards routinely raise with NumPy scalars/arrays in args — e.g.
        # "NaN produced at A[3] = <np.float64>" — which plain json.dumps
        # rejects; to_dict must sanitize them
        err = ValueError("guard tripped", np.float64(3.5), np.arange(4))
        report.record("governor", "prog", err, "terminal-failure",
                      value=np.int32(7), buffer=np.zeros((8, 8)))
        (rec,) = json.loads(json.dumps(report.to_dict()))
        assert rec["error_args"][1] == 3.5
        assert rec["error_args"][2] == [0, 1, 2, 3]
        assert rec["detail"]["value"] == 7
        # large arrays collapse to a shape/dtype summary, not 64 numbers
        assert rec["detail"]["buffer"] == {
            "ndarray": {"shape": [8, 8], "dtype": "float64"}}


# ---------------------------------------------------------------------------
# graceful degradation
# ---------------------------------------------------------------------------

class _PoisonedCompiled:
    """Stand-in for a CompiledSDFG whose execution dies mid-write."""

    def __call__(self, **kwargs):
        for value in kwargs.values():
            if isinstance(value, np.ndarray):
                value[:] = -1.0  # mangle inputs before dying
        raise RuntimeError("simulated runtime crash")


class TestGracefulDegradation:
    def _poison(self, prog, *args, **kwargs):
        prog.compile(*args, **kwargs)
        for key in list(prog._compiled_cache):
            prog._compiled_cache[key] = _PoisonedCompiled()

    def test_degrades_to_interpreter_with_correct_result(self):
        @repro.program
        def triple(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 3.0

        A = np.arange(6, dtype=np.float64)
        B = np.zeros(6)
        with Config.override(resilience__mode="degrade"):
            self._poison(triple, A=A, B=B)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ResilienceWarning)
                triple(A=A, B=B)
        # the poisoned stage mangled A in place and died; degradation must
        # have restored the inputs before re-executing
        assert np.allclose(A, np.arange(6))
        assert np.allclose(B, A * 3)
        assert len(triple.failure_report.degradations) == 1
        record = triple.failure_report.degradations[0]
        assert record.detail["stage"] == "compiled"
        assert record.action == "fell-back:interpreter"

    def test_full_chain_to_python_reference(self):
        @repro.program
        def quadruple(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 4.0

        def boom(*args, **kwargs):
            raise RuntimeError("stage unavailable")

        quadruple.compile = boom
        quadruple.to_sdfg = boom
        A = np.arange(5, dtype=np.float64)
        B = np.zeros(5)
        with Config.override(resilience__mode="degrade"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ResilienceWarning)
                quadruple(A=A, B=B)
        assert np.allclose(B, A * 4)
        actions = [r.action for r in quadruple.failure_report.degradations]
        assert actions == ["fell-back:interpreter", "fell-back:python"]

    def test_strict_mode_raises(self):
        @repro.program
        def double(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 2.0

        A = np.arange(4, dtype=np.float64)
        B = np.zeros(4)
        self._poison(double, A=A, B=B)
        with pytest.raises(RuntimeError, match="simulated runtime crash"):
            double(A=A, B=B)
        assert not double.failure_report


# ---------------------------------------------------------------------------
# pre-execution validation
# ---------------------------------------------------------------------------

class TestValidateBeforeExecute:
    def _malformed(self):
        sdfg = SDFG("bad")
        state = sdfg.add_state("s0")
        state.add_node(AccessNode("ghost"))  # undeclared container
        return sdfg

    def test_fails_fast_by_default(self):
        with pytest.raises(InvalidSDFGError, match="ghost"):
            run_sdfg(self._malformed())

    def test_config_key_disables(self):
        with Config.override(validate__before_execute=False):
            run_sdfg(self._malformed())  # dangling node is never reached

    def test_explicit_argument_wins(self):
        with Config.override(validate__before_execute=False):
            with pytest.raises(InvalidSDFGError):
                run_sdfg(self._malformed(), validate=True)


# ---------------------------------------------------------------------------
# fault injection in simulated MPI
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_drop_survived_by_retransmission(self):
        plan = FaultPlan(drop_prob=1.0, max_drops=2)

        def work(comm):
            if comm.rank == 0:
                comm.Send(np.arange(4, dtype=np.float64), 1, tag=5)
            else:
                buf = np.empty(4)
                comm.Recv(buf, 0, tag=5)
                assert np.allclose(buf, np.arange(4))
            return True

        results, clocks, stats = run_spmd(work, 2, fault_plan=plan,
                                          timeout_s=5.0)
        assert results == [True, True]
        assert stats["retransmissions"] == 2
        assert plan.injected["drops"] == 2
        # retransmissions cost virtual time: backoff plus the repeated
        # injection overhead
        assert clocks[0] > 0.0

    def test_unbounded_drops_exhaust_retries(self):
        plan = FaultPlan(drop_prob=1.0)

        def work(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(2), 1)
            else:
                buf = np.empty(2)
                comm.Recv(buf, 0)

        with pytest.raises(SimMPIError, match="lost"):
            run_spmd(work, 2, fault_plan=plan, timeout_s=5.0)

    def test_duplicates_suppressed_by_sequence_numbers(self):
        plan = FaultPlan(duplicate_prob=1.0)

        def work(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0]), 1, tag=2)
                comm.Send(np.array([2.0]), 1, tag=2)
            else:
                first = np.empty(1)
                second = np.empty(1)
                comm.Recv(first, 0, tag=2)
                comm.Recv(second, 0, tag=2)
                assert first[0] == 1.0 and second[0] == 2.0
            return True

        results, _, stats = run_spmd(work, 2, fault_plan=plan, timeout_s=5.0)
        assert results == [True, True]
        assert stats["duplicates_suppressed"] >= 1
        assert plan.injected["duplicates"] == 2

    def test_delay_advances_receiver_clock(self):
        plan = FaultPlan(delay_prob=1.0, delay_s=0.5)

        def work(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1), 1)
            else:
                buf = np.empty(1)
                comm.Recv(buf, 0)
            return True

        _, clocks, _ = run_spmd(work, 2, fault_plan=plan, timeout_s=5.0)
        assert clocks[1] >= 0.5

    def test_injected_rank_crash(self):
        plan = FaultPlan(crash_rank=1, crash_after_ops=2)

        def work(comm):
            for _ in range(4):
                comm.Barrier()
            return True

        with pytest.raises(SimMPIError, match="injected crash on rank 1"):
            run_spmd(work, 2, fault_plan=plan, timeout_s=5.0)

    def test_seeded_plans_are_deterministic(self):
        plan_a = FaultPlan(seed=7, drop_prob=0.5)
        plan_b = FaultPlan(seed=7, drop_prob=0.5)
        decisions = [plan_a.drop((0, 1, 0)) for _ in range(20)]
        again = [plan_b.drop((0, 1, 0)) for _ in range(20)]
        assert decisions == again
        assert any(decisions) and not all(decisions)


class TestDeadlockDetection:
    def test_unmatched_recv_raises_diagnostic(self):
        def work(comm):
            if comm.rank == 0:
                buf = np.empty(1)
                comm.Recv(buf, 1, tag=9)  # nobody ever sends this
            return True

        start = time.monotonic()
        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(work, 3, timeout_s=0.5)
        assert time.monotonic() - start < 10.0  # bounded, not hanging
        message = str(excinfo.value)
        assert "rank 0" in message
        assert "Recv(source=1, tag=9)" in message
        assert "pending operations" in message
        assert "rank 1" in message and "rank 2" in message

    def test_unmatched_barrier_raises_diagnostic(self):
        def work(comm):
            if comm.rank == 0:
                comm.Barrier()  # rank 1 never joins
            return True

        with pytest.raises(DeadlockError, match="Barrier"):
            run_spmd(work, 2, timeout_s=0.5)

    def test_peer_failure_unblocks_pending_recv(self):
        def work(comm):
            if comm.rank == 0:
                buf = np.empty(1)
                comm.Recv(buf, 1, tag=4)
            else:
                raise ValueError("rank 1 died")

        start = time.monotonic()
        with pytest.raises(SimMPIError, match="rank 1 died"):
            run_spmd(work, 2, timeout_s=30.0)
        # rank 0 must abort promptly on the peer failure, long before
        # its own 30s deadlock timeout
        assert time.monotonic() - start < 10.0


class TestRequestSemantics:
    def test_test_attempts_completion(self):
        def work(comm):
            if comm.rank == 0:
                buf = np.empty(1)
                req = comm.Irecv(buf, 1, tag=3)
                assert req.test() is False  # nothing sent yet
                comm.Barrier()
                deadline = time.monotonic() + 5.0
                while not req.test():
                    assert time.monotonic() < deadline
                    time.sleep(0.001)
                assert buf[0] == 42.0
                req.wait()  # no-op after test() completed the operation
            else:
                comm.Barrier()
                comm.Send(np.array([42.0]), 0, tag=3)
            return True

        results, _, _ = run_spmd(work, 2, timeout_s=10.0)
        assert results == [True, True]

    def test_waitall_alias(self):
        def work(comm):
            partner = 1 - comm.rank
            recv = np.empty(2)
            reqs = [comm.Irecv(recv, partner, tag=6),
                    comm.Isend(np.full(2, float(comm.rank)), partner, tag=6)]
            Request.Waitall(reqs)
            assert np.allclose(recv, partner)
            return True

        run_spmd(work, 2, timeout_s=10.0)
