"""Unit tests for the SDFG IR: descriptors, memlets, states, validation,
serialization, and Graphviz export."""

import json

import numpy as np
import pytest

import repro
from repro.ir import (SDFG, AccessNode, InterstateEdge, InvalidSDFGError,
                      Memlet, ScheduleType, Tasklet, sdfg_to_dot)
from repro.ir.data import (AllocationLifetime, Array, Scalar, StorageType,
                           Stream)
from repro.ir.serialize import sdfg_from_json
from repro.symbolic import Integer, Range, Symbol

N = Symbol("N")


def simple_sdfg():
    sdfg = SDFG("simple")
    sdfg.add_array("A", (N,), repro.float64)
    sdfg.add_array("B", (N,), repro.float64)
    state = sdfg.add_state("s0")
    state.add_mapped_tasklet(
        "scale", {"i": "0:N"},
        {"__in": Memlet("A", "i")}, "__out = 2 * __in",
        {"__out": Memlet("B", "i")})
    return sdfg


class TestDataDescriptors:
    def test_array_shape_and_size(self):
        arr = Array(repro.float64, (N, 4))
        assert arr.total_size() == 4 * N
        assert arr.size_bytes() == 32 * N

    def test_scalar_ndim(self):
        assert Scalar(repro.int32).ndim == 0

    def test_contiguous_strides(self):
        arr = Array(repro.float64, (N, 8))
        assert arr.strides == (Integer(8), Integer(1))

    def test_stream_buffer(self):
        stream = Stream(repro.float64, buffer_size=16)
        assert stream.buffer_size == 16
        assert stream.transient

    def test_clone_is_deep(self):
        arr = Array(repro.float64, (N,))
        clone = arr.clone()
        clone.transient = True
        assert not arr.transient

    def test_json_roundtrip(self):
        from repro.ir.data import Data

        arr = Array(repro.float64, (N, 3), transient=True,
                    storage=StorageType.GPU_Global)
        back = Data.from_json(arr.to_json())
        assert back.transient
        assert back.storage is StorageType.GPU_Global
        assert str(back.shape[0]) == "N"


class TestMemlets:
    def test_volume(self):
        assert Memlet("A", "0:N").volume() == N

    def test_empty(self):
        memlet = Memlet.empty()
        assert memlet.is_empty()
        assert memlet.num_elements() == 0

    def test_bad_wcr_rejected(self):
        with pytest.raises(ValueError):
            Memlet("A", "0:N", wcr="xor")

    def test_equality_and_clone(self):
        a = Memlet("A", "0:N", wcr="sum")
        assert a == a.clone()
        assert a != Memlet("A", "0:N")

    def test_subs(self):
        memlet = Memlet("A", "i")
        assert memlet.subs({"i": 3}).subset.is_point() is True


class TestSDFGStructure:
    def test_duplicate_container_rejected(self):
        sdfg = SDFG("x")
        sdfg.add_array("A", (N,), repro.float64)
        with pytest.raises(NameError):
            sdfg.add_array("A", (N,), repro.float64)

    def test_invalid_container_name(self):
        sdfg = SDFG("x")
        with pytest.raises(NameError):
            sdfg.add_array("not valid!", (N,), repro.float64)

    def test_temp_data_name_unique(self):
        sdfg = SDFG("x")
        name1 = sdfg.temp_data_name()
        sdfg.add_scalar(name1, repro.float64, transient=True)
        assert sdfg.temp_data_name() != name1

    def test_state_label_dedup(self):
        sdfg = SDFG("x")
        s1 = sdfg.add_state("foo")
        s2 = sdfg.add_state("foo")
        assert s1.label != s2.label

    def test_start_state(self):
        sdfg = SDFG("x")
        first = sdfg.add_state()
        sdfg.add_state()
        assert sdfg.start_state is first

    def test_add_state_before_updates_start(self):
        sdfg = SDFG("x")
        s = sdfg.add_state()
        before = sdfg.add_state_before(s)
        assert sdfg.start_state is before
        assert sdfg.successors(before) == [s]

    def test_add_state_after_reroutes(self):
        sdfg = SDFG("x")
        a = sdfg.add_state()
        b = sdfg.add_state()
        sdfg.add_edge(a, b, InterstateEdge())
        mid = sdfg.add_state_after(a)
        assert sdfg.successors(a) == [mid]
        assert sdfg.successors(mid) == [b]

    def test_arglist_excludes_transients(self):
        sdfg = simple_sdfg()
        sdfg.add_transient("tmp", (N,), repro.float64)
        assert set(sdfg.arglist()) == {"A", "B"}

    def test_free_symbols(self):
        sdfg = simple_sdfg()
        assert sdfg.free_symbols == {"N"}

    def test_scope_dict(self):
        sdfg = simple_sdfg()
        state = sdfg.states()[0]
        scope = state.scope_dict()
        from repro.ir import MapEntry, MapExit

        entry = next(n for n in state.nodes() if isinstance(n, MapEntry))
        tasklet = next(n for n in state.nodes() if isinstance(n, Tasklet))
        assert scope[tasklet] is entry
        assert scope[entry] is None
        assert scope[entry.exit_node] is entry

    def test_memlet_path(self):
        sdfg = simple_sdfg()
        state = sdfg.states()[0]
        tasklet = next(n for n in state.nodes() if isinstance(n, Tasklet))
        inner = state.in_edges(tasklet)[0]
        path = state.memlet_path(inner)
        assert isinstance(path[0].src, AccessNode)
        assert path[-1].dst is tasklet


class TestValidation:
    def test_valid_graph(self):
        simple_sdfg().validate()

    def test_undeclared_container(self):
        sdfg = SDFG("bad")
        state = sdfg.add_state()
        state.add_access("ghost")
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()

    def test_dangling_connector(self):
        sdfg = SDFG("bad")
        sdfg.add_array("A", (N,), repro.float64)
        state = sdfg.add_state()
        tasklet = state.add_tasklet("t", {"__in"}, {"__out"}, "__out = __in")
        state.add_edge(state.add_read("A"), None, tasklet, "__in",
                       Memlet("A", "0"))
        # __out never connected
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()

    def test_dimension_mismatch(self):
        sdfg = SDFG("bad")
        sdfg.add_array("A", (N, N), repro.float64)
        sdfg.add_scalar("x", repro.float64)
        state = sdfg.add_state()
        tasklet = state.add_tasklet("t", {"__in"}, {"__out"}, "__out = __in")
        state.add_edge(state.add_read("A"), None, tasklet, "__in",
                       Memlet("A", "0"))  # 1-D subset on 2-D array
        state.add_edge(tasklet, "__out", state.add_write("x"), None,
                       Memlet("x", "0"))
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()

    def test_cyclic_state_rejected(self):
        sdfg = SDFG("bad")
        sdfg.add_array("A", (N,), repro.float64)
        state = sdfg.add_state()
        a = state.add_access("A")
        b = state.add_access("A")
        state.add_nedge(a, b, Memlet("A", "0:N"))
        state.add_nedge(b, a, Memlet("A", "0:N"))
        with pytest.raises(InvalidSDFGError):
            sdfg.validate()


class TestInterstate:
    def test_condition_evaluation(self):
        edge = InterstateEdge("i < N")
        assert edge.evaluate_condition({"i": 2, "N": 5}) is True
        assert edge.evaluate_condition({"i": 5, "N": 5}) is False

    def test_simultaneous_assignments(self):
        edge = InterstateEdge(assignments={"a": "b", "b": "a"})
        env = {"a": 1, "b": 2}
        edge.apply_assignments(env)
        assert env == {"a": 2, "b": 1}

    def test_free_symbols(self):
        edge = InterstateEdge("i < N", {"i": "i + k"})
        assert edge.free_symbols == {"i", "N", "k"}


class TestSerialization:
    def test_roundtrip_executes(self):
        sdfg = simple_sdfg()
        restored = sdfg_from_json(json.loads(json.dumps(sdfg.to_json())))
        restored.validate()
        A = np.arange(6, dtype=np.float64)
        B = np.zeros(6)
        restored(A=A, B=B)
        assert np.allclose(B, 2 * A)

    def test_roundtrip_interstate(self):
        sdfg = SDFG("loop")
        sdfg.add_array("C", (N,), repro.float64)
        init = sdfg.add_state("init")
        body = sdfg.add_state("body")
        sdfg.add_edge(init, body, InterstateEdge("N > 0", {"i": "0"}))
        restored = sdfg_from_json(sdfg.to_json())
        edge = restored.edges()[0]
        assert edge.data.condition == "N > 0"
        assert edge.data.assignments == {"i": "0"}


class TestDotExport:
    def test_dot_contains_nodes(self):
        dot = sdfg_to_dot(simple_sdfg())
        assert "digraph" in dot
        assert "trapezium" in dot      # map entry shape
        assert "octagon" in dot        # tasklet shape

    def test_dot_marks_wcr_dashed(self):
        sdfg = SDFG("wcr")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_scalar("s", repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet(
            "red", {"i": "0:N"}, {"__v": Memlet("A", "i")}, "__out = __v",
            {"__out": Memlet("s", "0", wcr="sum")})
        assert "dashed" in sdfg_to_dot(sdfg)


class TestMalformedSDFGs:
    """Validation on deliberately corrupted graphs (resilience layer)."""

    def test_missing_map_exit(self):
        from repro.ir.nodes import make_map_scope

        sdfg = SDFG("broken_scope")
        state = sdfg.add_state()
        entry, _exit = make_map_scope("m", ["i"], Range.from_string("0:4"))
        state.add_node(entry)  # MapExit never added
        with pytest.raises(InvalidSDFGError, match="MapExit"):
            sdfg.validate()

    def test_empty_tasklet_code(self):
        sdfg = SDFG("empty_code")
        state = sdfg.add_state()
        state.add_node(Tasklet("t", set(), set(), ""))
        with pytest.raises(InvalidSDFGError, match="empty code"):
            sdfg.validate()

    def test_interstate_unknown_symbol(self):
        sdfg = SDFG("bad_edge")
        first = sdfg.add_state("a")
        second = sdfg.add_state("b")
        sdfg.add_edge(first, second, InterstateEdge("mystery > 0"))
        with pytest.raises(InvalidSDFGError, match="mystery"):
            sdfg.validate()

    def test_nested_connector_without_container(self):
        from repro.ir.nodes import NestedSDFG

        inner = SDFG("inner")
        inner.add_array("x", (1,), repro.float64)
        inner.add_state()
        sdfg = SDFG("outer")
        sdfg.add_array("A", (1,), repro.float64)
        state = sdfg.add_state()
        state.add_node(NestedSDFG("call", inner, {"ghost_conn"}, set()))
        with pytest.raises(InvalidSDFGError, match="ghost_conn"):
            sdfg.validate()

    def test_collect_validation_errors_reports_all(self):
        from repro.ir import collect_validation_errors

        sdfg = SDFG("multi")
        bad1 = sdfg.add_state("bad1")
        bad1.add_node(AccessNode("ghost1"))
        bad2 = sdfg.add_state("bad2")
        bad2.add_node(AccessNode("ghost2"))
        errors = collect_validation_errors(sdfg)
        assert len(errors) == 2
        messages = " ".join(str(e) for e in errors)
        assert "ghost1" in messages and "ghost2" in messages
        # validate_sdfg stops at the first of the same violations
        with pytest.raises(InvalidSDFGError, match="ghost1"):
            sdfg.validate()

    def test_collect_validation_errors_clean_graph(self):
        from repro.ir import collect_validation_errors

        assert collect_validation_errors(simple_sdfg()) == []
