"""Tests for the type system (S2) and library nodes/expansions (S8)."""

import numpy as np
import pytest

import repro
from repro.dtypes import ArrayAnnotation, dtype_of, result_type, typeclass
from repro.ir import SDFG, Memlet
from repro.library import MatMul, Outer, Reduce
from repro.library.registry import register_expansion, set_priority
from repro.runtime.executor import run_sdfg
from repro.symbolic import Symbol

N = repro.symbol("N")


class TestTypeclass:
    def test_annotation_syntax(self):
        ann = repro.float64[N, 4]
        assert isinstance(ann, ArrayAnnotation)
        assert ann.ndim == 2
        assert ann.dtype == repro.float64

    def test_single_dim_annotation(self):
        assert repro.int32[N].ndim == 1

    def test_bytes(self):
        assert repro.float64.bytes == 8
        assert repro.int16.bytes == 2

    def test_kind_predicates(self):
        assert repro.float32.is_float
        assert repro.int64.is_integer
        assert repro.complex128.is_complex
        assert repro.bool_.is_bool

    def test_call_casts(self):
        assert repro.int32(3.7) == 3
        assert isinstance(repro.float32(1), np.float32)

    def test_equality_with_numpy(self):
        assert repro.float64 == np.float64
        assert repro.float64 == np.dtype(np.float64)
        assert repro.float64 != repro.float32

    def test_dtype_of(self):
        assert dtype_of(np.zeros(3, dtype=np.int32)) == repro.int32
        assert dtype_of(1.5) == repro.float64
        assert dtype_of(2) == repro.int64
        assert dtype_of(True) == repro.bool_

    def test_dtype_of_unsupported(self):
        with pytest.raises(TypeError):
            dtype_of("not a dtype")

    def test_result_type_promotion(self):
        assert result_type(repro.int16, repro.float32) == repro.float32
        assert result_type(repro.int64, repro.float32) == repro.float64

    def test_json_roundtrip(self):
        assert typeclass.from_json(repro.float32.to_json()) == repro.float32


def _matmul_sdfg(impl, m=6, k=5, n=4):
    sdfg = SDFG(f"mm_{impl}")
    sdfg.add_array("A", (m, k), repro.float64)
    sdfg.add_array("B", (k, n), repro.float64)
    sdfg.add_array("C", (m, n), repro.float64)
    state = sdfg.add_state()
    node = MatMul()
    state.add_node(node)
    state.add_edge(state.add_read("A"), None, node, "_a",
                   Memlet("A", f"0:{m}, 0:{k}"))
    state.add_edge(state.add_read("B"), None, node, "_b",
                   Memlet("B", f"0:{k}, 0:{n}"))
    state.add_edge(node, "_c", state.add_write("C"), None,
                   Memlet("C", f"0:{m}, 0:{n}"))
    if impl is not None:
        sdfg.expand_library_nodes(implementation=impl)
    return sdfg


class TestMatMulNode:
    @pytest.mark.parametrize("impl", [None, "MKL", "native"])
    def test_implementations_agree(self, impl):
        rng = np.random.default_rng(0)
        A, B = rng.random((6, 5)), rng.random((5, 4))
        C = np.zeros((6, 4))
        run_sdfg(_matmul_sdfg(impl), A=A, B=B, C=C)
        assert np.allclose(C, A @ B), impl

    def test_flop_count(self):
        node = MatMul()
        env = {"_a_shape": (10, 20), "_b_shape": (20, 30)}
        assert node.flop_count(env) == 2 * 10 * 20 * 30

    def test_unknown_implementation(self):
        sdfg = _matmul_sdfg(None)
        node = sdfg.library_nodes()[0][0]
        with pytest.raises(KeyError):
            node.expand(sdfg, sdfg.states()[0], "nonexistent")

    def test_priority_lists(self):
        assert MatMul.default_priority["CPU"][0] == "MKL"
        assert MatMul.default_priority["FPGA"][0] == "native"


class TestReduceNode:
    @pytest.mark.parametrize("wcr,expected", [
        ("sum", 21.0), ("max", 6.0), ("min", 1.0)])
    def test_full_reduction(self, wcr, expected):
        sdfg = SDFG(f"red_{wcr}")
        sdfg.add_array("A", (6,), repro.float64)
        sdfg.add_array("out", (1,), repro.float64)
        state = sdfg.add_state()
        node = Reduce(wcr=wcr)
        state.add_node(node)
        state.add_edge(state.add_read("A"), None, node, "_in",
                       Memlet("A", "0:6"))
        state.add_edge(node, "_out", state.add_write("out"), None,
                       Memlet("out", "0"))
        A = np.arange(1, 7, dtype=np.float64)
        out = np.zeros(1)
        run_sdfg(sdfg, A=A, out=out)
        assert out[0] == expected

    def test_invalid_wcr(self):
        with pytest.raises(ValueError):
            Reduce(wcr="xor")

    def test_axis_reduce_native_expansion(self):
        sdfg = SDFG("red_axis")
        sdfg.add_array("A", (4, 3), repro.float64)
        sdfg.add_array("out", (3,), repro.float64)
        state = sdfg.add_state()
        node = Reduce(wcr="sum", axes=(0,))
        state.add_node(node)
        state.add_edge(state.add_read("A"), None, node, "_in",
                       Memlet("A", "0:4, 0:3"))
        state.add_edge(node, "_out", state.add_write("out"), None,
                       Memlet("out", "0:3"))
        sdfg.expand_library_nodes(implementation="native")
        rng = np.random.default_rng(1)
        A = rng.random((4, 3))
        out = np.zeros(3)
        run_sdfg(sdfg, A=A, out=out)
        assert np.allclose(out, A.sum(axis=0))


class TestExtensibility:
    def test_user_registered_expansion(self):
        """Users can add their own libraries and nodes (§3.2)."""

        class Doubler(repro.ir.LibraryNode):
            implementations = {}
            default_priority = {}

            def __init__(self):
                super().__init__("Doubler", inputs=("_x",), outputs=("_y",))

            def compute(self, inputs, env):
                return {"_y": 2 * np.asarray(inputs["_x"])}

        @register_expansion(Doubler, "tasklet")
        def expand(node, sdfg, state):
            ins = {e.dst_conn: e for e in state.in_edges(node)}
            outs = {e.src_conn: e for e in state.out_edges(node)}
            t = state.add_tasklet("double", {"_x"}, {"_y"}, "_y = 2 * _x")
            state.add_edge(ins["_x"].src, None, t, "_x", ins["_x"].memlet)
            state.add_edge(t, "_y", outs["_y"].dst, None, outs["_y"].memlet)
            state.remove_node(node)
            return t

        set_priority(Doubler, "CPU", ["tasklet"])

        sdfg = SDFG("user_lib")
        sdfg.add_array("X", (N,), repro.float64)
        sdfg.add_array("Y", (N,), repro.float64)
        state = sdfg.add_state()
        node = Doubler()
        state.add_node(node)
        state.add_edge(state.add_read("X"), None, node, "_x", Memlet("X", "0:N"))
        state.add_edge(node, "_y", state.add_write("Y"), None, Memlet("Y", "0:N"))
        assert sdfg.expand_library_nodes(device="CPU") == 1
        X = np.arange(4, dtype=np.float64)
        Y = np.zeros(4)
        run_sdfg(sdfg, X=X, Y=Y)
        assert np.allclose(Y, 2 * X)
