"""Distributed checkpoint/restart (DESIGN.md §10): surviving rank crashes.

Covers the FaultPlan multi-crash sites, the multi-failure world, request
deadlines under faults, the checkpoint snapshot/spill machinery, and
end-to-end crash recovery through ``run_distributed``.
"""

# NOTE: no `from __future__ import annotations` — it would stringify the
# @repro.program parameter annotations before the frontend reads them.

import os
import threading
import time

import numpy as np
import pytest

import repro
import repro.comm
from repro import instrumentation
from repro.config import Config
from repro.distributed import run_distributed
from repro.governor import Budget, ExecutionTimeout, MemoryBudgetExceeded
from repro.resilience.distributed import (CheckpointCorrupt, CheckpointStore,
                                          RankSnapshot, SupervisedRun,
                                          UnrecoveredError, WorldCheckpoint,
                                          classify_failure,
                                          run_spmd_supervised)
from repro.runtime import parallel
from repro.simmpi import (DeadlockError, FaultPlan, InjectedCrash, Request,
                          SimMPIError, run_spmd)
from repro.simmpi.comm import Comm, _World
from repro.simmpi.netmodel import NetModel


N_ = repro.symbol("N")
lNx = repro.symbol("lNx")
lNy = repro.symbol("lNy")
noff = repro.symbol("noff")
soff = repro.symbol("soff")
woff = repro.symbol("woff")
eoff = repro.symbol("eoff")


@repro.program
def j2d_small(TSTEPS: repro.int32, A: repro.float64[N_, N_],
              B: repro.float64[N_, N_]):
    lA = np.zeros((lNx + 2, lNy + 2))
    lB = np.zeros((lNx + 2, lNy + 2))
    lA[1:-1, 1:-1] = repro.comm.BlockScatter(A, (lNx, lNy))
    lB[1:-1, 1:-1] = repro.comm.BlockScatter(B, (lNx, lNy))
    for t in range(1, TSTEPS):
        repro.comm.HaloExchange(lA)
        lB[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff] = 0.2 * (
            lA[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff]
            + lA[1 + noff:lNx + 1 - soff, woff:lNy - eoff]
            + lA[1 + noff:lNx + 1 - soff, 2 + woff:lNy + 2 - eoff]
            + lA[2 + noff:lNx + 2 - soff, 1 + woff:lNy + 1 - eoff]
            + lA[noff:lNx - soff, 1 + woff:lNy + 1 - eoff])
        repro.comm.HaloExchange(lB)
        lA[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff] = 0.2 * (
            lB[1 + noff:lNx + 1 - soff, 1 + woff:lNy + 1 - eoff]
            + lB[1 + noff:lNx + 1 - soff, woff:lNy - eoff]
            + lB[1 + noff:lNx + 1 - soff, 2 + woff:lNy + 2 - eoff]
            + lB[2 + noff:lNx + 2 - soff, 1 + woff:lNy + 1 - eoff]
            + lB[noff:lNx - soff, 1 + woff:lNy + 1 - eoff])
    A[:] = repro.comm.BlockGather(lA[1:-1, 1:-1], (N_, N_))
    B[:] = repro.comm.BlockGather(lB[1:-1, 1:-1], (N_, N_))


def offsets(rank, grid):
    nb = grid.neighbors(rank)
    return {"noff": 1 if nb["north"] < 0 else 0,
            "soff": 1 if nb["south"] < 0 else 0,
            "woff": 1 if nb["west"] < 0 else 0,
            "eoff": 1 if nb["east"] < 0 else 0}


def jacobi_inputs(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, n)), rng.random((n, n))


def run_jacobi(A, B, tsteps=4, **kw):
    n = A.shape[0]
    return run_distributed(j2d_small, 4, TSTEPS=tsteps, A=A, B=B,
                           lNx=n // 2, lNy=n // 2, rank_args=offsets, **kw)


class TestFaultPlanCrashSites:
    def test_crashes_list_combines_with_legacy_pair(self):
        plan = FaultPlan(crash_rank=0, crash_after_ops=2,
                         crashes=[(1, 5), (2, 7)])
        assert plan.crash_sites == [(0, 2), (1, 5), (2, 7)]
        assert plan.pending_crash_sites == plan.crash_sites

    def test_sites_fire_once(self):
        plan = FaultPlan(crashes=[(1, 3)])
        assert not plan.should_crash(1, 2)
        assert plan.should_crash(1, 3)
        # the fault is transient: a respawned rank is not re-killed
        assert not plan.should_crash(1, 4)
        assert plan.injected["crashes"] == 1
        assert plan.pending_crash_sites == []

    def test_multiple_sites_fire_independently(self):
        plan = FaultPlan(crashes=[(0, 1), (1, 2)])
        assert plan.should_crash(0, 1)
        assert not plan.should_crash(0, 5)     # site 0 already fired
        assert plan.should_crash(1, 2)
        assert plan.injected["crashes"] == 2


class TestMultiRankFailures:
    def test_all_failing_ranks_named(self):
        def work(comm):
            comm.Barrier()
            if comm.rank == 0:
                raise ValueError("zero exploded")
            if comm.rank == 2:
                raise KeyError("two exploded")
            # survivors block until the barrier abort unwinds them
            comm.Barrier()

        with pytest.raises(SimMPIError) as excinfo:
            run_spmd(work, 3, timeout_s=5.0)
        message = str(excinfo.value)
        # tolerate the race: at least one primary named, never a survivor-
        # only report, and the chained cause is a real failure
        assert ("rank 0" in message) or ("rank 2" in message)
        assert ("zero exploded" in message) or ("two exploded" in message)
        assert excinfo.value.__cause__ is not None

    def test_both_ranks_named_when_failures_are_simultaneous(self):
        # synchronize outside the comm layer: a comm.Barrier here would
        # race one rank's failure against the other's barrier exit
        sync = threading.Barrier(2)

        def work(comm):
            sync.wait()         # everyone dies together
            raise ValueError(f"rank {comm.rank} bang")

        with pytest.raises(SimMPIError) as excinfo:
            run_spmd(work, 2, timeout_s=5.0)
        message = str(excinfo.value)
        assert "2 ranks failed" in message
        assert "rank 0 bang" in message and "rank 1 bang" in message

    def test_secondary_peer_aborts_are_filtered(self):
        def work(comm):
            if comm.rank == 1:
                raise ValueError("primary death")
            buf = np.empty(1)
            comm.Recv(buf, 1)   # unwinds via the peer-failure abort

        with pytest.raises(SimMPIError) as excinfo:
            run_spmd(work, 2, timeout_s=10.0)
        message = str(excinfo.value)
        assert "primary death" in message
        assert "aborted" not in message


class TestRequestsUnderFaults:
    def test_test_hits_deadline_on_dropped_message(self):
        """A Test() poll loop on a message that never arrives must raise
        DeadlockError at the deadline, not spin forever."""
        plan = FaultPlan(drop_prob=1.0, max_drops=10)

        def work(comm):
            if comm.rank == 1:
                buf = np.empty(1)
                req = comm.Irecv(buf, 0, tag=1)
                with pytest.raises(DeadlockError):
                    while not req.test():
                        time.sleep(0.01)
                return "deadline"
            try:
                comm.Send(np.ones(1), 1, tag=1)   # dropped beyond retries
            except SimMPIError:
                time.sleep(1.5)   # outlive rank 1's polling window
                raise
            return "sent"

        with pytest.raises(SimMPIError, match="lost"):
            run_spmd(work, 2, timeout_s=1.0, fault_plan=plan)

    def test_waitall_mixed_done_and_stuck(self):
        def work(comm):
            if comm.rank == 0:
                comm.Send(np.ones(1), 1, tag=1)   # only tag 1 ever arrives
                return True
            done = np.empty(1)
            stuck = np.empty(1)
            reqs = [comm.Irecv(done, 0, tag=1), comm.Irecv(stuck, 0, tag=2)]
            while not reqs[0].test():
                time.sleep(0.005)
            with pytest.raises(DeadlockError):
                Request.Waitall(reqs)
            assert done[0] == 1.0
            return True

        results, _, _ = run_spmd(work, 2, timeout_s=0.5)
        assert results == [True, True]

    def test_test_aborts_on_peer_failure(self):
        def work(comm):
            if comm.rank == 0:
                raise ValueError("sender died")
            buf = np.empty(1)
            req = comm.Irecv(buf, 0)
            with pytest.raises(SimMPIError):
                deadline = time.monotonic() + 10.0
                while not req.test():
                    time.sleep(0.01)
                    assert time.monotonic() < deadline
            return True

        with pytest.raises(SimMPIError, match="sender died"):
            run_spmd(work, 2, timeout_s=30.0)


class TestCheckpointMachinery:
    def test_rank_snapshot_restores_in_place(self):
        original = np.arange(6, dtype=np.float64)
        snap = RankSnapshot.capture(0, 3, {"A": original},
                                    {"N": 6, "t": 2})
        original[:] = -1.0
        containers = {"A": original}
        snap.restore_into(containers)
        assert containers["A"] is original          # in-place convention
        assert np.array_equal(original, np.arange(6, dtype=np.float64))
        # snapshots are reusable: restoring did not alias
        original[:] = -2.0
        snap.restore_into(containers)
        assert np.array_equal(original, np.arange(6, dtype=np.float64))

    def test_world_checkpoint_disk_roundtrip(self, tmp_path):
        snap = RankSnapshot.capture(0, 1, {"A": np.ones(3)}, {"t": 4})
        ckpt = WorldCheckpoint(boundary=1, epoch=2, ranks=[snap],
                               comm={"clocks": [0.5], "op_counts": [3],
                                     "seq": {}, "delivered": {},
                                     "mailboxes": {}, "comm_stats": {}})
        path = ckpt.save(str(tmp_path))
        assert os.path.basename(path) == "ckpt-epoch0002-state0001.pkl"
        assert not [p for p in os.listdir(tmp_path) if ".tmp" in p]
        loaded = WorldCheckpoint.load(path)
        assert loaded.boundary == 1 and loaded.epoch == 2
        assert np.array_equal(loaded.ranks[0].containers["A"], np.ones(3))
        assert loaded.ranks[0].symbols["t"] == 4

    def test_store_spills_when_directory_configured(self, tmp_path):
        store = CheckpointStore(spill_dir=str(tmp_path))
        snap = RankSnapshot.capture(0, 0, {}, {})
        store.commit(WorldCheckpoint(boundary=0, epoch=0, ranks=[snap],
                                     comm={"clocks": [], "op_counts": [],
                                           "seq": {}, "delivered": {},
                                           "mailboxes": {},
                                           "comm_stats": {}}))
        assert store.commits == 1
        assert len(store.paths) == 1 and os.path.exists(store.paths[0])

    def test_store_reads_ckpt_dir_config(self, tmp_path):
        with Config.override(resilience__ckpt_dir=str(tmp_path)):
            assert CheckpointStore().spill_dir == str(tmp_path)
        assert CheckpointStore().spill_dir == (
            os.environ.get("REPRO_CKPT_DIR") or "")

    def test_stale_epoch_messages_drained_at_recv(self):
        world = _World(2, NetModel.from_config(), timeout_s=5.0, epoch=1)
        box = world.mailbox(0, 1, 0)
        box.put((0, 0, np.array([-1.0]), 0.0, 8))   # stale: epoch 0
        box.put((1, 0, np.array([42.0]), 0.0, 8))   # current epoch
        buf = np.empty(1)
        Comm(world, 1).Recv(buf, 0)
        assert buf[0] == 42.0
        assert world.comm_stats["stale_discarded"] == 1

    def test_restore_comm_retags_in_flight_messages(self):
        old = _World(2, NetModel.from_config(), timeout_s=5.0, epoch=0)
        Comm(old, 0).Send(np.array([7.0]), 1, tag=3)
        snap = old.snapshot_comm()
        new = _World(2, NetModel.from_config(), timeout_s=5.0, epoch=1)
        new.restore_comm(snap)
        buf = np.empty(1)
        Comm(new, 1).Recv(buf, 0, tag=3)            # retagged, deliverable
        assert buf[0] == 7.0
        assert new.comm_stats["stale_discarded"] == 0


class TestFailureClassification:
    def test_simmpi_faults_are_recoverable(self):
        assert classify_failure(InjectedCrash("boom"))
        assert classify_failure(SimMPIError("message lost"))

    def test_wrapped_faults_found_on_cause_chain(self):
        try:
            try:
                raise InjectedCrash("inner crash")
            except InjectedCrash as inner:
                raise RuntimeError("tasklet wrapper") from inner
        except RuntimeError as outer:
            assert classify_failure(outer)

    def test_user_errors_and_deadlocks_are_fatal(self):
        assert not classify_failure(ValueError("user bug"))
        assert not classify_failure(DeadlockError("stuck"))


class TestSupervisedExecution:
    def test_fault_free_run_is_single_epoch(self):
        def work(comm, snapshot):
            assert snapshot is None
            comm.Barrier()
            return comm.rank * 10

        run = run_spmd_supervised(work, 3, timeout_s=5.0)
        assert isinstance(run, SupervisedRun)
        assert run.results == [0, 10, 20]
        assert run.epochs == 1 and run.recovery_events == []
        assert run.failed_ranks == [] and run.checkpoints == 0

    def test_crash_restarts_from_scratch_with_reset(self):
        plan = FaultPlan(crashes=[(1, 2)])
        scoreboard = []

        def work(comm, snapshot):
            for _ in range(4):
                comm.Barrier()
            return True

        run = run_spmd_supervised(work, 2, fault_plan=plan, timeout_s=5.0,
                                  ckpt_interval=0, ckpt_comm_ops=0,
                                  reset=lambda: scoreboard.append("reset"))
        assert run.results == [True, True]
        assert run.epochs == 2 and run.failed_ranks == [1]
        assert scoreboard == ["reset"]
        (event,) = run.recovery_events
        assert event.kind == "restart-scratch" and event.boundary is None
        assert event.failed_ranks == [1]

    def test_fatal_failure_is_not_retried(self):
        calls = []

        def work(comm, snapshot):
            calls.append(comm.rank)
            if comm.rank == 0:
                raise ValueError("user bug, do not retry")
            comm.Barrier()

        with pytest.raises(UnrecoveredError, match="user bug") as excinfo:
            run_spmd_supervised(work, 2, timeout_s=5.0)
        assert sorted(calls) == [0, 1]              # exactly one epoch
        (event,) = excinfo.value.recovery_events
        assert event.kind == "fatal"

    def test_restart_budget_exhaustion(self):
        # a fresh crash site for every epoch: never converges
        plan = FaultPlan(crashes=[(0, 2), (0, 2), (0, 2)])

        def work(comm, snapshot):
            for _ in range(4):
                comm.Barrier()

        with pytest.raises(UnrecoveredError, match="injected crash") \
                as excinfo:
            run_spmd_supervised(work, 2, fault_plan=plan, timeout_s=5.0,
                                max_restarts=2)
        kinds = [e.kind for e in excinfo.value.recovery_events]
        assert kinds == ["restart-scratch", "restart-scratch",
                         "budget-exhausted"]


class TestEndToEndRecovery:
    def test_single_crash_matches_fault_free(self):
        A0, B0 = jacobi_inputs()
        Af, Bf = A0.copy(), B0.copy()
        fault_free = run_jacobi(Af, Bf)
        assert fault_free.recovery_events == []
        assert fault_free.per_rank_values and fault_free.failed_ranks == []

        Ad, Bd = A0.copy(), B0.copy()
        plan = FaultPlan(crash_rank=2, crash_after_ops=9)
        result = run_jacobi(Ad, Bd, fault_plan=plan, ckpt_interval=2,
                            timeout_s=20.0)
        assert plan.injected["crashes"] == 1
        assert result.failed_ranks == [2]
        assert [e.kind for e in result.recovery_events] == ["restart"]
        assert np.allclose(Ad, Af) and np.allclose(Bd, Bf)

    def test_multi_crash_plan_recovers(self):
        A0, B0 = jacobi_inputs(seed=3)
        Af, Bf = A0.copy(), B0.copy()
        run_jacobi(Af, Bf)

        Ad, Bd = A0.copy(), B0.copy()
        plan = FaultPlan(crashes=[(1, 6), (3, 14)])
        result = run_jacobi(Ad, Bd, fault_plan=plan, ckpt_interval=2,
                            max_restarts=4, timeout_s=20.0)
        assert plan.injected["crashes"] == 2
        assert result.failed_ranks == [1, 3]
        assert len(result.recovery_events) == 2
        assert np.allclose(Ad, Af) and np.allclose(Bd, Bf)

    def test_comm_op_triggered_checkpoints(self):
        A0, B0 = jacobi_inputs(seed=4)
        Af, Bf = A0.copy(), B0.copy()
        run_jacobi(Af, Bf)

        Ad, Bd = A0.copy(), B0.copy()
        plan = FaultPlan(crash_rank=0, crash_after_ops=12)
        result = run_jacobi(Ad, Bd, fault_plan=plan, ckpt_comm_ops=4,
                            timeout_s=20.0)
        assert result.failed_ranks == [0]
        assert np.allclose(Ad, Af) and np.allclose(Bd, Bf)

    def test_checkpoints_spill_to_disk(self, tmp_path):
        A0, B0 = jacobi_inputs(seed=5)
        with Config.override(resilience__ckpt_dir=str(tmp_path)):
            run_jacobi(A0.copy(), B0.copy(), ckpt_interval=3,
                       timeout_s=20.0)
        spilled = sorted(os.listdir(tmp_path))
        assert spilled and all(p.startswith("ckpt-") and p.endswith(".pkl")
                               for p in spilled)
        ckpt = WorldCheckpoint.load(os.path.join(tmp_path, spilled[-1]))
        assert len(ckpt.ranks) == 4

    def test_per_rank_values_returned(self):
        A0, B0 = jacobi_inputs(seed=6)
        result = run_jacobi(A0, B0)
        assert len(result.per_rank_values) == 4
        assert len(result.op_counts) == 4 and min(result.op_counts) > 0

    def test_recovery_region_instrumented(self):
        A0, B0 = jacobi_inputs(seed=7)
        plan = FaultPlan(crash_rank=1, crash_after_ops=7)
        with instrumentation.profile("jacobi-chaos") as prof:
            run_jacobi(A0, B0, fault_plan=plan, ckpt_interval=2,
                       timeout_s=20.0)
        recovery = prof.report().by_category("recovery")
        assert recovery, "recovery events must be instrumented"
        assert any("restart" in r.name for r in recovery)

    def test_interpreter_path_also_checkpoints(self):
        """The boundary hook fires in both backends; the supervisor works
        through raw rank functions with no SDFG at all (no checkpoints,
        scratch restart) — and the compiled path above — so here we pin
        the hook contract itself."""
        from repro.resilience import hooks

        fired = []
        with hooks.boundary_hook(lambda i, c, s: fired.append(i)):
            hooks.state_boundary(3, {}, {})
            with hooks.suppressed():
                hooks.state_boundary(9, {}, {})     # nested SDFG: masked
            hooks.state_boundary(4, {}, {})
        hooks.state_boundary(5, {}, {})             # no hook installed
        assert fired == [3, 4]


class TestChaosSweep:
    def test_chaos_sweep_single_case(self, tmp_path):
        from repro.resilience.chaos import SCHEMA, chaos_sweep

        out = str(tmp_path / "CHAOS.json")
        report = chaos_sweep(seeds=2, out=out, case_names=["pgemv"],
                             timeout_s=20.0, verbose=False)
        assert report["schema"] == SCHEMA
        assert os.path.exists(out)
        summary = report["summary"]
        assert summary["trials"] == 2
        assert summary["recovered"] == 2
        assert summary["unrecovered"] == 0 and summary["diverged"] == 0
        (case,) = report["cases"]
        assert all(t["crashes_fired"] >= 1 for t in case["trials"])


def _tiny_world_ckpt(epoch, value):
    snap = RankSnapshot.capture(0, 1, {"A": np.full(3, float(value))},
                                {"t": epoch})
    return WorldCheckpoint(boundary=1, epoch=epoch, ranks=[snap],
                           comm={"clocks": [0.0], "op_counts": [0],
                                 "seq": {}, "delivered": {},
                                 "mailboxes": {}, "comm_stats": {}})


class TestCheckpointIntegrity:
    def test_corrupted_payload_raises_structured_error(self, tmp_path):
        path = _tiny_world_ckpt(1, 1.0).save(str(tmp_path))
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF                            # flip one payload byte
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointCorrupt, match="checksum"):
            WorldCheckpoint.load(path)

    def test_truncated_and_foreign_files_rejected(self, tmp_path):
        path = _tiny_world_ckpt(1, 1.0).save(str(tmp_path))
        blob = open(path, "rb").read()
        short = os.path.join(tmp_path, "short.pkl")
        open(short, "wb").write(blob[:16])          # inside the header
        with pytest.raises(CheckpointCorrupt):
            WorldCheckpoint.load(short)
        foreign = os.path.join(tmp_path, "foreign.pkl")
        open(foreign, "wb").write(b"not a checkpoint at all" * 4)
        with pytest.raises(CheckpointCorrupt):
            WorldCheckpoint.load(foreign)

    def test_store_evicts_corrupt_latest_and_falls_back(self, tmp_path):
        store = CheckpointStore(spill_dir=str(tmp_path))
        store.commit(_tiny_world_ckpt(1, 1.0))
        store.commit(_tiny_world_ckpt(2, 2.0))
        assert len(store.paths) == 2
        newest = store.paths[-1]
        blob = bytearray(open(newest, "rb").read())
        blob[-1] ^= 0xFF
        open(newest, "wb").write(bytes(blob))
        loaded = store.load_latest_from_disk()
        # detect-and-evict: the corrupt epoch-2 file is gone, epoch 1 serves
        assert loaded is not None and loaded.epoch == 1
        assert loaded.ranks[0].containers["A"][0] == 1.0
        assert newest not in store.paths
        assert not os.path.exists(newest)

    def test_store_scans_directory_when_paths_unknown(self, tmp_path):
        _tiny_world_ckpt(1, 1.0).save(str(tmp_path))
        _tiny_world_ckpt(2, 2.0).save(str(tmp_path))
        fresh = CheckpointStore(spill_dir=str(tmp_path))  # e.g. new process
        loaded = fresh.load_latest_from_disk()
        assert loaded is not None and loaded.epoch == 2

    def test_store_returns_none_when_everything_corrupt(self, tmp_path):
        store = CheckpointStore(spill_dir=str(tmp_path))
        store.commit(_tiny_world_ckpt(1, 1.0))
        open(store.paths[0], "wb").write(b"garbage")
        assert store.load_latest_from_disk() is None
        assert store.paths == []


class TestGovernedDistributed:
    def test_deadline_raises_structured_timeout(self):
        A0, B0 = jacobi_inputs(seed=8)
        with pytest.raises(ExecutionTimeout) as excinfo:
            run_jacobi(A0, B0, tsteps=64, timeout_s=20.0,
                       budget=Budget(deadline_s=1e-4))
        err = excinfo.value
        assert err.elapsed_s >= 1e-4
        # the supervisor attaches its event log to the governor error
        assert hasattr(err, "recovery_events")

    def test_generous_budget_matches_ungoverned_run(self):
        A0, B0 = jacobi_inputs(seed=9)
        Af, Bf = A0.copy(), B0.copy()
        run_jacobi(Af, Bf)
        Ag, Bg = A0.copy(), B0.copy()
        result = run_jacobi(Ag, Bg, timeout_s=20.0,
                            budget=Budget(deadline_s=60.0,
                                          max_bytes=1 << 30))
        assert result.recovery_events == []
        assert np.allclose(Ag, Af) and np.allclose(Bg, Bf)

    def test_per_rank_admission_rejects_oversized_launch(self):
        A0, B0 = jacobi_inputs(seed=10)
        with pytest.raises(MemoryBudgetExceeded):
            run_jacobi(A0, B0, timeout_s=20.0, budget=Budget(max_bytes=64))


class TestChaosMulticore:
    """The chaos matrix crossed with the multicore backend (4 workers)."""

    @pytest.fixture(autouse=True)
    def _four_threads(self, monkeypatch):
        monkeypatch.setenv("REPRO_CPU_THREADS", "4")
        parallel.reset_stats()
        yield
        parallel.shutdown_pool()
        parallel.reset_stats()

    def test_chaos_sweep_under_four_threads(self, tmp_path):
        from repro.resilience.chaos import SCHEMA, chaos_sweep

        out = str(tmp_path / "CHAOS-MT.json")
        with Config.override(device__cpu_threads=0):
            report = chaos_sweep(seeds=2, out=out, case_names=["pgemv"],
                                 timeout_s=20.0, verbose=False)
        assert report["schema"] == SCHEMA
        summary = report["summary"]
        assert summary["recovered"] == 2
        assert summary["unrecovered"] == 0 and summary["diverged"] == 0

    def test_crash_inside_parallel_region_recovers(self):
        fired = threading.Event()

        def work(comm, snapshot):
            comm.Barrier()
            total = [0.0]
            lock = threading.Lock()

            def body(lo, hi, acc):
                if comm.rank == 1 and not fired.is_set():
                    fired.set()
                    raise InjectedCrash("crash inside a parallel chunk")
                with lock:
                    total[0] += hi - lo + 1     # inclusive-end chunk span

            with Config.override(device__cpu_threads=0,
                                 parallel__min_work=0):
                parallel.parallel_map(body, 0, 99, 1, 10**9, {})
            comm.Barrier()
            return total[0]

        run = run_spmd_supervised(work, 2, timeout_s=20.0)
        assert fired.is_set()
        assert run.epochs == 2 and run.failed_ranks == [1]
        assert [e.kind for e in run.recovery_events] == ["restart-scratch"]
        assert run.results == [100.0, 100.0]
        assert parallel.stats().parallel_regions >= 1

    def test_checkpoint_crash_recovery_under_four_threads(self, tmp_path):
        A0, B0 = jacobi_inputs(seed=11)
        Af, Bf = A0.copy(), B0.copy()
        run_jacobi(Af, Bf)
        Ad, Bd = A0.copy(), B0.copy()
        plan = FaultPlan(crash_rank=2, crash_after_ops=9)
        with Config.override(device__cpu_threads=0,
                             resilience__ckpt_dir=str(tmp_path)):
            result = run_jacobi(Ad, Bd, fault_plan=plan, ckpt_interval=2,
                                timeout_s=20.0)
        assert result.failed_ranks == [2]
        assert np.allclose(Ad, Af) and np.allclose(Bd, Bf)
