"""Tests for the simulated MPI substrate (S12)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import (NetModel, ProcessGrid, Request, SimMPIError,
                          VectorType, balanced_dims, run_spmd)


class TestPointToPoint:
    def test_ring_exchange(self):
        def work(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            recv = np.empty(4)
            req = comm.Irecv(recv, prv, tag=7)
            comm.Send(np.full(4, float(comm.rank)), nxt, tag=7)
            req.wait()
            return recv[0]

        results, clocks, stats = run_spmd(work, 6)
        assert results == [(r - 1) % 6 for r in range(6)]
        assert stats["messages"] == 6

    def test_tags_disambiguate(self):
        def work(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0]), 1, tag=1)
                comm.Send(np.array([2.0]), 1, tag=2)
            elif comm.rank == 1:
                second = np.empty(1)
                first = np.empty(1)
                comm.Recv(second, 0, tag=2)
                comm.Recv(first, 0, tag=1)
                assert second[0] == 2.0 and first[0] == 1.0
            return True

        run_spmd(work, 2)

    def test_sendrecv(self):
        def work(comm):
            partner = 1 - comm.rank
            out = np.full(3, float(comm.rank))
            buf = np.empty(3)
            comm.Sendrecv(out, partner, buf, partner, tag=3)
            assert np.allclose(buf, partner)
            return True

        run_spmd(work, 2)

    def test_rank_failure_propagates(self):
        def work(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.Barrier()

        with pytest.raises(SimMPIError):
            run_spmd(work, 2)

    def test_clocks_advance_on_communication(self):
        def work(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1000), 1)
            elif comm.rank == 1:
                comm.Recv(np.empty(1000), 0)

        _, clocks, _ = run_spmd(work, 2)
        assert clocks[0] > 0 and clocks[1] > 0
        # the receiver finishes after the sender injected
        assert clocks[1] >= clocks[0] * 0.5


class TestCollectives:
    def test_bcast(self):
        def work(comm):
            data = np.arange(5, dtype=np.float64) if comm.rank == 0 \
                else np.empty(5)
            comm.Bcast(data, root=0)
            assert np.allclose(data, np.arange(5))
            return True

        run_spmd(work, 4)

    def test_scatter_gather_roundtrip(self):
        def work(comm):
            if comm.rank == 0:
                send = np.arange(comm.size * 2, dtype=np.float64)
            else:
                send = np.empty(0)
            local = np.empty(2)
            comm.Scatter(send, local, root=0)
            assert np.allclose(local, [comm.rank * 2, comm.rank * 2 + 1])
            out = np.empty(comm.size * 2) if comm.rank == 0 else None
            comm.Gather(local + 100, out, root=0)
            if comm.rank == 0:
                assert np.allclose(out, np.arange(comm.size * 2) + 100)
            return True

        run_spmd(work, 4)

    def test_allgather(self):
        def work(comm):
            out = np.empty((comm.size, 1))
            comm.Allgather(np.array([float(comm.rank)]), out)
            assert np.allclose(out.ravel(), np.arange(comm.size))
            return True

        run_spmd(work, 5)

    @pytest.mark.parametrize("op,expected", [
        ("sum", 6.0), ("max", 3.0), ("min", 0.0)])
    def test_allreduce_ops(self, op, expected):
        def work(comm):
            out = np.empty(1)
            comm.Allreduce(np.array([float(comm.rank)]), out, op=op)
            assert out[0] == expected
            return True

        run_spmd(work, 4)

    def test_alltoall(self):
        def work(comm):
            send = np.arange(comm.size, dtype=np.float64) + 10 * comm.rank
            recv = np.empty(comm.size)
            comm.Alltoall(send, recv)
            assert np.allclose(recv, [10 * src + comm.rank
                                      for src in range(comm.size)])
            return True

        run_spmd(work, 4)

    def test_collectives_synchronize_clocks(self):
        def work(comm):
            comm.advance(0.1 * comm.rank)
            comm.Barrier()
            return comm.clock

        results, _, _ = run_spmd(work, 4)
        assert max(results) - min(results) < 1e-9  # all synced to max


class TestVectorType:
    def test_pack_unpack_roundtrip(self):
        vt = VectorType(count=3, blocklength=2, stride=4, dtype=np.float64)
        flat = np.arange(12, dtype=np.float64)
        packed = vt.pack(flat)
        assert np.allclose(packed, [0, 1, 4, 5, 8, 9])
        target = np.zeros(12)
        vt.unpack(target, packed)
        assert np.allclose(target[[0, 1, 4, 5, 8, 9]], packed)

    def test_strided_column_send(self):
        def work(comm):
            A = np.arange(16, dtype=np.float64).reshape(4, 4).copy()
            vt = VectorType(4, 1, 4, np.float64)
            if comm.rank == 0:
                comm.Send(A, 1, tag=5, datatype=vt)  # column 0
            else:
                col = np.zeros(16)
                comm.Recv(col, 0, tag=5, datatype=vt)
                assert np.allclose(col[[0, 4, 8, 12]], [0, 4, 8, 12])
            return True

        run_spmd(work, 2)


class TestGrids:
    def test_balanced_dims_product(self):
        for size in (1, 2, 6, 12, 36, 64, 1296):
            dims = balanced_dims(size)
            assert dims[0] * dims[1] == size
            assert dims[0] >= dims[1]

    def test_coords_roundtrip(self):
        grid = ProcessGrid(12)
        for rank in range(12):
            assert grid.rank_of(grid.coords(rank)) == rank

    def test_neighbors_at_boundary(self):
        grid = ProcessGrid(4, dims=(2, 2))
        nb = grid.neighbors(0)
        assert nb["north"] == -1 and nb["west"] == -1
        assert nb["south"] == 2 and nb["east"] == 1

    def test_bad_grid_rejected(self):
        with pytest.raises(ValueError):
            ProcessGrid(6, dims=(4, 2))


class TestNetModel:
    def test_collectives_scale_logarithmically(self):
        net = NetModel.from_config()
        t4 = net.bcast(1024, 4)
        t64 = net.bcast(1024, 64)
        assert t64 == pytest.approx(t4 * 3, rel=0.01)  # log2(64)/log2(4)

    def test_bandwidth_term(self):
        net = NetModel.from_config()
        small = net.ptp(8)
        large = net.ptp(8 * 1024 * 1024)
        assert large > small * 10

    def test_single_rank_collectives_free(self):
        net = NetModel.from_config()
        assert net.bcast(4096, 1) == 0.0
        assert net.allgather(4096, 1) == 0.0


@given(extent=st.integers(1, 200), parts=st.integers(1, 16))
@settings(max_examples=60)
def test_block_bounds_partition(extent, parts):
    """block_bounds tiles [0, extent) exactly, in order, without gaps."""
    from repro.distributed.block import block_bounds

    covered = []
    for i in range(parts):
        lo, hi = block_bounds(extent, parts, i)
        assert 0 <= lo <= hi <= extent
        covered.extend(range(lo, hi))
    assert covered == list(range(extent))
