"""Unit and property tests for symbolic range sets (memlet subsets)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Integer, Range, Symbol

N = Symbol("N")
M = Symbol("M")


class TestConstruction:
    def test_from_shape(self):
        rng = Range.from_shape((N, 4))
        assert rng.ndim == 2
        assert rng.size() == (N, Integer(4))

    def test_from_indices(self):
        rng = Range.from_indices([N - 1, Integer(0)])
        assert rng.is_point() is True

    def test_from_string_slices(self):
        rng = Range.from_string("0:N, 3, 2:M:2")
        assert rng.ndim == 3
        assert rng.dims[1][0] == Integer(3)
        assert rng.dims[2][2] == Integer(2)

    def test_from_string_expressions(self):
        rng = Range.from_string("1:N-1")
        begin, end, step = rng.dims[0]
        assert begin == Integer(1)
        assert end == N - 2

    def test_str_roundtrip(self):
        rng = Range.from_string("1:N, i, 0:M:4")
        assert Range.from_string(str(rng)) == rng

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            Range([(1, 2, 3, 4)])


class TestQueries:
    def test_volume(self):
        rng = Range.from_shape((N, 3))
        assert rng.volume() == 3 * N

    def test_num_elements(self):
        rng = Range.from_string("2:10:2")
        assert rng.num_elements() == 4

    def test_covers_full(self):
        full = Range.from_shape((N,))
        inner = Range.from_string("1:N-1")
        assert full.covers(inner) is True
        assert inner.covers(full) is False

    def test_covers_unknown(self):
        a = Range.from_string("0:N")
        b = Range.from_string("0:M")
        assert a.covers(b) is None

    def test_intersects_disjoint(self):
        a = Range.from_string("0:4")
        b = Range.from_string("4:8")
        assert a.intersects(b) is False

    def test_intersects_overlap(self):
        a = Range.from_string("0:5")
        b = Range.from_string("4:8")
        assert a.intersects(b) is True

    def test_intersects_symbolic_shift(self):
        i = Symbol("i", nonnegative=False)
        d = Symbol("d", positive=True)
        a = Range.from_indices([i])
        b = Range.from_indices([i + d])
        assert a.intersects(b) is False

    def test_intersection_box(self):
        a = Range.from_string("0:6")
        b = Range.from_string("4:9")
        inter = a.intersection(b)
        assert inter.num_elements() == 2

    def test_union_hull(self):
        a = Range.from_string("0:3")
        b = Range.from_string("5:8")
        hull = a.union_hull(b)
        assert hull.num_elements() == 8


class TestTransformations:
    def test_offset(self):
        rng = Range.from_string("2:6")
        shifted = rng.offset_by([2], negative=True)
        assert shifted == Range.from_string("0:4")

    def test_compose(self):
        outer = Range.from_string("10:20")
        inner = Range.from_string("2:5")
        composed = outer.compose(inner)
        assert composed == Range.from_string("12:15")

    def test_compose_strided(self):
        outer = Range.from_string("0:20:2")
        inner = Range.from_string("1:4")
        composed = outer.compose(inner)
        begin, end, step = composed.dims[0]
        assert begin == Integer(2)
        assert step == Integer(2)

    def test_subs(self):
        rng = Range.from_string("0:N")
        assert rng.subs({"N": 7}).num_elements() == 7

    def test_to_slices(self):
        rng = Range.from_string("1:N-1")
        assert rng.to_slices({"N": 10}) == (slice(1, 9, 1),)

    def test_to_slices_empty_range(self):
        # a triangular subset 0:i at i == 0 stores inclusive end -1: the
        # range is empty, and the stop must not wrap into from-the-end
        # indexing (slice(0, 0) for end -1, but end -2 naively becomes
        # slice(0, -1) — almost the whole array)
        arr = list(range(8))
        for end in (-1, -2, -3):
            rng = Range([(Integer(0), Integer(end), Integer(1))])
            assert arr[rng.to_slices()[0]] == []

    def test_to_slices_negative_step(self):
        arr = list(range(8))
        # descending 4..0: exclusive stop of inclusive 0 is None, not -1
        # (which wraps to the end) nor +1 (the old ascending conversion)
        rng = Range([(Integer(4), Integer(0), Integer(-1))])
        assert arr[rng.to_slices()[0]] == [4, 3, 2, 1, 0]
        # descending 5..2 keeps a finite stop
        rng = Range([(Integer(5), Integer(2), Integer(-1))])
        assert arr[rng.to_slices()[0]] == [5, 4, 3, 2]
        # empty descending range (end above begin)
        rng = Range([(Integer(2), Integer(5), Integer(-1))])
        assert arr[rng.to_slices()[0]] == []


# ---------------------------------------------------------------------------
# Property tests against concrete integer sets
# ---------------------------------------------------------------------------

bounds = st.tuples(st.integers(0, 12), st.integers(0, 12)).map(
    lambda t: (min(t), max(t)))


def concrete(lo, hi):
    return set(range(lo, hi + 1))


@given(a=bounds, b=bounds)
@settings(max_examples=80)
def test_intersects_matches_concrete(a, b):
    ra = Range([(a[0], a[1], 1)])
    rb = Range([(b[0], b[1], 1)])
    verdict = ra.intersects(rb)
    truth = bool(concrete(*a) & concrete(*b))
    assert verdict is truth  # fully constant: must be decidable


@given(a=bounds, b=bounds)
@settings(max_examples=80)
def test_covers_matches_concrete(a, b):
    ra = Range([(a[0], a[1], 1)])
    rb = Range([(b[0], b[1], 1)])
    verdict = ra.covers(rb)
    truth = concrete(*b) <= concrete(*a)
    assert verdict is truth


@given(a=bounds, b=bounds)
@settings(max_examples=80)
def test_union_hull_contains_both(a, b):
    ra = Range([(a[0], a[1], 1)])
    rb = Range([(b[0], b[1], 1)])
    hull = ra.union_hull(rb)
    assert hull.covers(ra) is True
    assert hull.covers(rb) is True


@given(outer=bounds, inner=bounds)
@settings(max_examples=80)
def test_compose_matches_concrete(outer, inner):
    """outer.compose(inner) == {outer.start + i : i in inner}."""
    ra = Range([(outer[0], outer[1], 1)])
    ri = Range([(inner[0], inner[1], 1)])
    composed = ra.compose(ri)
    expected = {outer[0] + i for i in concrete(*inner)}
    lo, hi, _ = composed.dims[0]
    assert concrete(int(lo.evaluate({})), int(hi.evaluate({}))) == expected
