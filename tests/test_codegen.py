"""Tests for the Python code generator (S9): vectorized scopes must agree
with the reference interpreter, and artifacts must be usable."""

import json
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.codegen import compile_sdfg
from repro.codegen.pygen import affine_decompose
from repro.codegen.support import align_axes, dim_length, make_slice
from repro.runtime.executor import run_sdfg
from repro.symbolic import Integer, Symbol

N = repro.symbol("N")
M = repro.symbol("M")


class TestAffineDecompose:
    def test_constant(self):
        param, a, c = affine_decompose(Integer(5), ["i"])
        assert param is None and c == Integer(5)

    def test_pure_param(self):
        i = Symbol("i", nonnegative=False)
        param, a, c = affine_decompose(i, ["i"])
        assert param == "i" and a == Integer(1) and c == Integer(0)

    def test_affine(self):
        i = Symbol("i", nonnegative=False)
        param, a, c = affine_decompose(2 * i + 3, ["i"])
        assert (param, a, c) == ("i", Integer(2), Integer(3))

    def test_symbolic_offset(self):
        i = Symbol("i", nonnegative=False)
        param, a, c = affine_decompose(i + N, ["i"])
        assert param == "i" and c == N

    def test_two_params_rejected(self):
        i = Symbol("i", nonnegative=False)
        j = Symbol("j", nonnegative=False)
        assert affine_decompose(i + j, ["i", "j"]) is None

    def test_nonlinear_rejected(self):
        i = Symbol("i", nonnegative=False)
        assert affine_decompose(i * i, ["i"]) is None


class TestSupportHelpers:
    def test_make_slice_positive(self):
        assert make_slice(1, 2, 0, 4, 1) == slice(2, 7, 1)

    def test_make_slice_coefficient(self):
        assert make_slice(2, 0, 0, 3, 1) == slice(0, 7, 2)

    def test_make_slice_negative(self):
        arr = np.arange(10)
        sl = make_slice(-1, 9, 0, 9, 1)
        assert np.allclose(arr[sl], arr[::-1])

    def test_dim_length(self):
        assert dim_length(0, 9, 1) == 10
        assert dim_length(2, 9, 3) == 3

    def test_align_axes_transpose(self):
        view = np.arange(6).reshape(2, 3)
        aligned = align_axes(view, [1, 0], 2)   # dims are (param1, param0)
        assert aligned.shape == (3, 2)
        assert np.allclose(aligned, view.T)

    def test_align_axes_expand(self):
        view = np.arange(3)
        aligned = align_axes(view, [1], 2)
        assert aligned.shape == (1, 3)


class TestGeneratedVsInterpreter:
    """The compiled module and the reference interpreter must agree."""

    def compare(self, prog, **arrays):
        sdfg = prog.to_sdfg()
        args_a = {k: np.copy(v) if isinstance(v, np.ndarray) else v
                  for k, v in arrays.items()}
        args_b = {k: np.copy(v) if isinstance(v, np.ndarray) else v
                  for k, v in arrays.items()}
        ret_a = compile_sdfg(sdfg)(**args_a)
        ret_b = run_sdfg(sdfg, **args_b)
        for key in arrays:
            if isinstance(arrays[key], np.ndarray):
                assert np.allclose(args_a[key], args_b[key]), key
        if ret_a is not None or ret_b is not None:
            assert np.allclose(ret_a, ret_b)

    def test_shifted_views(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[1:-1] = A[:-2] * 0.5 + A[2:] * 0.5

        self.compare(prog, A=np.random.default_rng(0).random(16),
                     B=np.zeros(16))

    def test_strided_access(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[0:N:2] = A[0:N:2] * 2.0

        self.compare(prog, A=np.arange(10, dtype=np.float64), B=np.zeros(10))

    def test_reversed_access(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = np.flip(A)

        self.compare(prog, A=np.arange(7, dtype=np.float64), B=np.zeros(7))

    def test_wcr_axis_reduction(self):
        @repro.program
        def prog(A: repro.float64[N, M], out: repro.float64[M]):
            out[:] = np.sum(A, axis=0)

        sdfg = prog.to_sdfg().clone()
        sdfg.expand_library_nodes(implementation="native")
        A = np.random.default_rng(1).random((5, 7))
        out_gen = np.zeros(7)
        out_int = np.zeros(7)
        compile_sdfg(sdfg)(A=A, out=out_gen)
        run_sdfg(sdfg, A=A, out=out_int)
        assert np.allclose(out_gen, A.sum(axis=0))
        assert np.allclose(out_int, out_gen)

    def test_map_parameter_code_falls_back(self):
        """Index-dependent tasklet code cannot vectorize but stays correct."""
        @repro.program
        def prog(B: repro.float64[N]):
            for i in repro.map[0:N]:
                B[i] = i * 2.0

        self.compare(prog, B=np.zeros(6))

    def test_dynamic_indirection(self):
        @repro.program
        def prog(idx: repro.int64[N], out: repro.float64[M]):
            for i in repro.map[0:N]:
                out[idx[i]] += 1.0

        self.compare(prog, idx=np.array([0, 2, 2, 1], dtype=np.int64),
                     out=np.zeros(3))


class TestCompiledArtifacts:
    def test_source_is_python(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0

        compiled = compile_sdfg(prog.to_sdfg())
        compile(compiled.source, "<check>", "exec")  # must parse
        assert "__run" in compiled.source

    def test_state_visits_recorded(self):
        @repro.program
        def prog(A: repro.float64[N], T: repro.int32):
            for t in range(T):
                A += 1.0

        compiled = compile_sdfg(prog.to_sdfg())
        A = np.zeros(4)
        compiled(A=A, T=5)
        assert sum(compiled.last_state_visits.values()) >= 5

    def test_codegen_time_recorded(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0

        compiled = compile_sdfg(prog.to_sdfg())
        assert compiled.codegen_seconds > 0

    def test_sdfgcc_cli(self, tmp_path):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 3.0

        sdfg_path = tmp_path / "prog.json"
        prog.to_sdfg().save(str(sdfg_path))
        out_path = tmp_path / "prog_gen.py"
        from repro.codegen.sdfgcc import main

        assert main([str(sdfg_path), "-o", str(out_path)]) == 0
        assert out_path.exists()
        compile(out_path.read_text(), "<cli>", "exec")

    def test_save_source(self, tmp_path):
        @repro.program
        def prog(A: repro.float64[N]):
            A *= 2.0

        compiled = compile_sdfg(prog.to_sdfg())
        path = tmp_path / "module.py"
        compiled.save_source(str(path))
        assert "def __run" in path.read_text()
