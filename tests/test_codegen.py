"""Tests for the Python code generator (S9): vectorized scopes must agree
with the reference interpreter, and artifacts must be usable."""

import json
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.codegen import compile_sdfg
from repro.codegen.pygen import affine_decompose
from repro.codegen.support import align_axes, dim_length, make_slice
from repro.runtime.executor import run_sdfg
from repro.symbolic import Integer, Symbol

N = repro.symbol("N")
M = repro.symbol("M")


class TestAffineDecompose:
    def test_constant(self):
        param, a, c = affine_decompose(Integer(5), ["i"])
        assert param is None and c == Integer(5)

    def test_pure_param(self):
        i = Symbol("i", nonnegative=False)
        param, a, c = affine_decompose(i, ["i"])
        assert param == "i" and a == Integer(1) and c == Integer(0)

    def test_affine(self):
        i = Symbol("i", nonnegative=False)
        param, a, c = affine_decompose(2 * i + 3, ["i"])
        assert (param, a, c) == ("i", Integer(2), Integer(3))

    def test_symbolic_offset(self):
        i = Symbol("i", nonnegative=False)
        param, a, c = affine_decompose(i + N, ["i"])
        assert param == "i" and c == N

    def test_two_params_rejected(self):
        i = Symbol("i", nonnegative=False)
        j = Symbol("j", nonnegative=False)
        assert affine_decompose(i + j, ["i", "j"]) is None

    def test_nonlinear_rejected(self):
        i = Symbol("i", nonnegative=False)
        assert affine_decompose(i * i, ["i"]) is None


class TestSupportHelpers:
    def test_make_slice_positive(self):
        assert make_slice(1, 2, 0, 4, 1) == slice(2, 7, 1)

    def test_make_slice_coefficient(self):
        assert make_slice(2, 0, 0, 3, 1) == slice(0, 7, 2)

    def test_make_slice_negative(self):
        arr = np.arange(10)
        sl = make_slice(-1, 9, 0, 9, 1)
        assert np.allclose(arr[sl], arr[::-1])

    def test_make_slice_empty_range_not_wrapped(self):
        # a triangular map dimension 0:i at i == 0 arrives as lo=0, hi=-1:
        # the range is empty.  Naive stop conversion gives slice(0, 0)
        # here, but one element earlier (hi=-2) it gives slice(0, -1) —
        # NumPy reads that from the end and selects almost everything
        arr = np.arange(10)
        for hi in (-1, -2, -3):
            assert arr[make_slice(1, 0, 0, hi, 1)].size == 0
        # same with a coefficient and an offset
        assert arr[make_slice(2, 1, 3, 1, 1)].size == 0

    def test_make_slice_descending_to_front(self):
        # descending to index 0: exclusive stop of inclusive 0 is None,
        # not -1 (which NumPy wraps to the last element)
        arr = np.arange(10)
        sl = make_slice(-1, 4, 0, 4, 1)
        assert np.allclose(arr[sl], [4, 3, 2, 1, 0])
        # descending empty range
        assert arr[make_slice(-1, 5, 0, -1, 1)].size == 0

    def test_make_slice_matches_gather_brute_force(self):
        # make_slice(a, c, lo, hi, st) must select exactly
        # [a*p + c for p in range(lo, hi+1, st)] — including empty ranges
        # (hi < lo) — whenever the indices are valid domain coordinates
        arr = np.arange(12)
        cases = [(a, c, lo, hi, st)
                 for a in (-2, -1, 1, 2)
                 for c in range(0, 9)
                 for (lo, hi, st) in [(0, 3, 1), (0, 4, 2), (1, 5, 2),
                                      (0, -1, 1), (0, -2, 1), (2, 0, 1)]]
        for a, c, lo, hi, st in cases:
            idx = [a * p + c for p in range(lo, hi + 1, st)]
            if not all(0 <= i < len(arr) for i in idx):
                continue
            got = arr[make_slice(a, c, lo, hi, st)]
            assert np.allclose(got, arr[idx]), (a, c, lo, hi, st)

    def test_min_max_array_safe(self):
        from repro.codegen.support import Max, Min

        v = np.arange(4.0)
        assert np.allclose(Min(v, 2.0), np.minimum(v, 2.0))
        assert np.allclose(Max(v, v[::-1], 1.5),
                           np.maximum(np.maximum(v, v[::-1]), 1.5))
        assert Min(3, 5) == 3 and Max(3, 5) == 5

    def test_dim_length(self):
        assert dim_length(0, 9, 1) == 10
        assert dim_length(2, 9, 3) == 3

    def test_align_axes_transpose(self):
        view = np.arange(6).reshape(2, 3)
        aligned = align_axes(view, [1, 0], 2)   # dims are (param1, param0)
        assert aligned.shape == (3, 2)
        assert np.allclose(aligned, view.T)

    def test_align_axes_expand(self):
        view = np.arange(3)
        aligned = align_axes(view, [1], 2)
        assert aligned.shape == (1, 3)


class TestGeneratedVsInterpreter:
    """The compiled module and the reference interpreter must agree."""

    def compare(self, prog, **arrays):
        sdfg = prog.to_sdfg()
        args_a = {k: np.copy(v) if isinstance(v, np.ndarray) else v
                  for k, v in arrays.items()}
        args_b = {k: np.copy(v) if isinstance(v, np.ndarray) else v
                  for k, v in arrays.items()}
        ret_a = compile_sdfg(sdfg)(**args_a)
        ret_b = run_sdfg(sdfg, **args_b)
        for key in arrays:
            if isinstance(arrays[key], np.ndarray):
                assert np.allclose(args_a[key], args_b[key]), key
        if ret_a is not None or ret_b is not None:
            assert np.allclose(ret_a, ret_b)

    def test_shifted_views(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[1:-1] = A[:-2] * 0.5 + A[2:] * 0.5

        self.compare(prog, A=np.random.default_rng(0).random(16),
                     B=np.zeros(16))

    def test_strided_access(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[0:N:2] = A[0:N:2] * 2.0

        self.compare(prog, A=np.arange(10, dtype=np.float64), B=np.zeros(10))

    def test_reversed_access(self):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = np.flip(A)

        self.compare(prog, A=np.arange(7, dtype=np.float64), B=np.zeros(7))

    def test_wcr_axis_reduction(self):
        @repro.program
        def prog(A: repro.float64[N, M], out: repro.float64[M]):
            out[:] = np.sum(A, axis=0)

        sdfg = prog.to_sdfg().clone()
        sdfg.expand_library_nodes(implementation="native")
        A = np.random.default_rng(1).random((5, 7))
        out_gen = np.zeros(7)
        out_int = np.zeros(7)
        compile_sdfg(sdfg)(A=A, out=out_gen)
        run_sdfg(sdfg, A=A, out=out_int)
        assert np.allclose(out_gen, A.sum(axis=0))
        assert np.allclose(out_int, out_gen)

    def test_map_parameter_code_falls_back(self):
        """Index-dependent tasklet code cannot vectorize but stays correct."""
        @repro.program
        def prog(B: repro.float64[N]):
            for i in repro.map[0:N]:
                B[i] = i * 2.0

        self.compare(prog, B=np.zeros(6))

    def test_vectorized_min_max_tasklet(self):
        """min/max over array operands inside a vectorized map scope."""
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N],
                 lo: repro.float64[N], hi: repro.float64[N]):
            for i in repro.map[0:N]:
                lo[i] = min(A[i], B[i], 0.5)
                hi[i] = max(A[i], B[i], 0.5)

        rng = np.random.default_rng(2)
        A, B = rng.random(12), rng.random(12)
        lo, hi = np.zeros(12), np.zeros(12)
        sdfg = prog.to_sdfg()
        compiled = compile_sdfg(sdfg)
        compiled(A=A, B=B, lo=lo, hi=hi)
        assert np.allclose(lo, np.minimum(np.minimum(A, B), 0.5))
        assert np.allclose(hi, np.maximum(np.maximum(A, B), 0.5))
        self.compare(prog, A=A, B=B, lo=np.zeros(12), hi=np.zeros(12))

    def test_reversal_descends_to_index_zero(self):
        """B[i] = A[N-1-i]: the vectorized read walks N-1 down to 0, so
        make_slice's exclusive stop crosses zero and must become None —
        a stop of -1 wraps to the last element and drops A[0]."""
        from repro.ir import SDFG, Memlet

        sdfg = SDFG("reversal")
        sdfg.add_array("A", (N,), repro.float64)
        sdfg.add_array("B", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("rev", {"i": "0:N"},
                                 {"__a": Memlet("A", "N - 1 - i")},
                                 "__out = __a",
                                 {"__out": Memlet("B", "i")})
        A = np.arange(6, dtype=np.float64)
        B_gen, B_int = np.zeros(6), np.zeros(6)
        compile_sdfg(sdfg)(A=A, B=B_gen)
        run_sdfg(sdfg, A=A, B=B_int)
        assert np.allclose(B_gen, A[::-1])
        assert np.allclose(B_int, A[::-1])

    def test_empty_triangular_map_dimension(self):
        """An inner map 0:K with K == 0 must execute zero iterations in the
        generated module, not a wrapped nearly-full slice."""
        from repro.ir import SDFG, Memlet

        K = repro.symbol("K")
        sdfg = SDFG("triangle")
        sdfg.add_array("A", (N,), repro.float64)
        state = sdfg.add_state()
        state.add_mapped_tasklet("m", {"i": "0:K"},
                                 {"__a": Memlet("A", "i")},
                                 "__out = __a + 1.0",
                                 {"__out": Memlet("A", "i")})
        A = np.arange(5, dtype=np.float64)
        expect = A.copy()
        compile_sdfg(sdfg)(A=A, K=0)
        assert np.allclose(A, expect)
        run_sdfg(sdfg, A=A, K=0)
        assert np.allclose(A, expect)
        compile_sdfg(sdfg)(A=A, K=3)
        expect[:3] += 1
        assert np.allclose(A, expect)

    def test_dynamic_indirection(self):
        @repro.program
        def prog(idx: repro.int64[N], out: repro.float64[M]):
            for i in repro.map[0:N]:
                out[idx[i]] += 1.0

        self.compare(prog, idx=np.array([0, 2, 2, 1], dtype=np.int64),
                     out=np.zeros(3))


class TestCompiledArtifacts:
    def test_source_is_python(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0

        compiled = compile_sdfg(prog.to_sdfg())
        compile(compiled.source, "<check>", "exec")  # must parse
        assert "__run" in compiled.source

    def test_state_visits_recorded(self):
        @repro.program
        def prog(A: repro.float64[N], T: repro.int32):
            for t in range(T):
                A += 1.0

        compiled = compile_sdfg(prog.to_sdfg())
        A = np.zeros(4)
        compiled(A=A, T=5)
        assert sum(compiled.last_state_visits.values()) >= 5

    def test_codegen_time_recorded(self):
        @repro.program
        def prog(A: repro.float64[N]):
            A += 1.0

        # bypass the compilation cache: a warm hit skips codegen entirely
        # (and reports codegen_seconds == 0.0, covered by the cache tests)
        compiled = compile_sdfg(prog.to_sdfg(), cache=False)
        assert compiled.codegen_seconds > 0

    def test_sdfgcc_cli(self, tmp_path):
        @repro.program
        def prog(A: repro.float64[N], B: repro.float64[N]):
            B[:] = A * 3.0

        sdfg_path = tmp_path / "prog.json"
        prog.to_sdfg().save(str(sdfg_path))
        out_path = tmp_path / "prog_gen.py"
        from repro.codegen.sdfgcc import main

        assert main([str(sdfg_path), "-o", str(out_path)]) == 0
        assert out_path.exists()
        compile(out_path.read_text(), "<cli>", "exec")

    def test_save_source(self, tmp_path):
        @repro.program
        def prog(A: repro.float64[N]):
            A *= 2.0

        compiled = compile_sdfg(prog.to_sdfg())
        path = tmp_path / "module.py"
        compiled.save_source(str(path))
        assert "def __run" in path.read_text()
