"""Communication-aware distributed optimizer (DESIGN.md §13).

Covers the overlap and dedup passes end to end on the comm corpus
(eager-vs-optimized bitwise equality, with and without injected faults),
the measured overlap benefit on jacobi, the >=20% pgemm volume saving,
the write-set negative case that must block dedup, the halo-extent
validation fix, envelope coalescing, and the CommReport schema.
"""

import numpy as np
import pytest

import repro
import repro.comm
from repro.config import Config
from repro.distributed.commopt import (HaloExtentError, dedup_collectives,
                                       optimize_comm, overlap_halo_exchanges,
                                       validate_halo_extents)
from repro.distributed.commopt.corpus import KERNELS, kernel, run_kernel
from repro.distributed.commopt.dedup import (_dedup_candidates,
                                             written_containers)
from repro.distributed.commopt.report import SCHEMA, CommReport
from repro.simmpi import FaultPlan, run_spmd
from repro.transformations.distributed import (DeduplicateCollectives,
                                               OverlapHaloExchange)

RANKS = 4


@pytest.fixture(autouse=True)
def _authoritative_optimize_flag(monkeypatch):
    # the CI matrix leg exports REPRO_COMM_OPT=1, which would silently
    # optimize the eager baselines these tests compare against; the
    # run_kernel optimize flag must stay authoritative here
    monkeypatch.delenv("REPRO_COMM_OPT", raising=False)


def _run_pair(name, fault_plan=None, seed=0):
    eager, eres = run_kernel(name, RANKS, optimize=False, seed=seed,
                             fault_plan=fault_plan)
    opt, ores = run_kernel(name, RANKS, optimize=True, seed=seed,
                           fault_plan=fault_plan)
    return eager, eres, opt, ores


class TestBitwiseEquality:
    @pytest.mark.parametrize("name", KERNELS)
    def test_optimized_matches_eager(self, name):
        eager, _, opt, ores = _run_pair(name)
        assert sum(ores.comm_report.applied.values()) > 0, \
            f"{name}: optimizer applied nothing, equality is vacuous"
        for out, value in eager.items():
            assert np.array_equal(value, opt[out]), \
                f"{name}: output {out} diverged under optimization"

    @pytest.mark.parametrize("name", KERNELS)
    @pytest.mark.parametrize("fault_seed", [1, 2])
    def test_optimized_matches_eager_under_faults(self, name, fault_seed):
        # transient drops force the retransmit path under both protocols;
        # values (not clocks) must stay bitwise identical
        plan = FaultPlan(seed=fault_seed, drop_prob=1.0, max_drops=4)
        eager, _, opt, _ = _run_pair(name, fault_plan=plan, seed=fault_seed)
        for out, value in eager.items():
            assert np.array_equal(value, opt[out]), \
                f"{name}: output {out} diverged under faults (seed {fault_seed})"


class TestOverlap:
    def test_jacobi_rewrites_both_halo_sites(self):
        sdfg = kernel("jacobi").build_sdfg()
        assert overlap_halo_exchanges(sdfg) == 2
        sdfg.validate()
        # fixpoint: a rewritten site no longer matches
        assert overlap_halo_exchanges(sdfg) == 0

    def test_jacobi_overlap_hides_wait(self):
        # with a slow modeled stencil the interior compute credit covers the
        # entire wire time: the optimized wait must drop below eager's
        with Config.override(commopt__stencil_gflops=1e-4):
            _, eres, _, ores = _run_pair("jacobi")
        eager_wait = eres.comm_report.wait_s("HaloExchange")
        opt_wait = ores.comm_report.wait_s("HaloFinish")
        assert eager_wait > 0.0
        assert opt_wait < eager_wait
        assert ores.commopt_stats.get("overlap_credit_s", 0.0) > 0.0

    def test_transformation_wrapper_applies(self):
        sdfg = kernel("jacobi").build_sdfg()
        assert sdfg.apply(OverlapHaloExchange) == 2


class TestDedup:
    def test_pgemm_saves_twenty_percent(self):
        _, eres, _, ores = _run_pair("pgemm")
        assert ores.comm_report.applied["dedup"] == 2
        saved = 1.0 - ores.comm_report.total_bytes / eres.comm_report.total_bytes
        assert saved >= 0.20, f"only {saved:.1%} comm bytes saved"

    def test_written_buffer_blocks_dedup(self):
        # negative case: jacobi gathers back into A and B, so the pass must
        # prove them written and refuse to memoize their scatters
        sdfg = kernel("jacobi").build_sdfg()
        written = written_containers(sdfg)
        assert {"A", "B"} <= written
        assert not list(_dedup_candidates(sdfg, written))
        assert dedup_collectives(sdfg) == 0

    def test_pgemm_candidates_are_loop_invariant_operands(self):
        sdfg = kernel("pgemm").build_sdfg()
        written = written_containers(sdfg)
        assert "C" in written          # iterated accumulator: never dedupable
        assert len(list(_dedup_candidates(sdfg, written))) == 2
        assert sdfg.apply(DeduplicateCollectives) == 2

    def test_optimize_comm_respects_config_gates(self):
        sdfg = kernel("pgemm").build_sdfg()
        with Config.override(commopt__dedup=False):
            assert optimize_comm(sdfg)["dedup"] == 0
        assert optimize_comm(sdfg)["dedup"] == 2


class TestEnvGate:
    def test_repro_comm_opt_env_forces_optimization(self, monkeypatch):
        # the CI matrix leg flips this env var; the runner must honor it
        # even when commopt.enabled is off
        monkeypatch.setenv("REPRO_COMM_OPT", "1")
        _, result = run_kernel("pgemm", RANKS, optimize=False)
        assert result.comm_report.optimized
        assert result.comm_report.applied["dedup"] == 2


class TestHaloExtents:
    def test_too_small_block_raises_structured_error(self):
        with pytest.raises(HaloExtentError) as exc:
            validate_halo_extents((2, 8), 1, {"north": 1, "south": -1}, 3)
        err = exc.value
        assert (err.dim, err.extent, err.halo, err.rank) == ("rows", 0, 1, 3)
        assert "rank 3" in str(err)

    def test_isolated_rank_needs_no_extent(self):
        # no neighbors on the undersized axis: nothing is exchanged there
        validate_halo_extents((2, 8), 1, {"north": -1, "south": -1,
                                          "west": 0, "east": -1}, 1)

    def test_halo_exchange_end_to_end_rejects_thin_blocks(self):
        def work(comm):
            from repro.distributed import context

            context.set_current(context.DistContext(comm))
            try:
                padded = np.zeros((2, 4))   # zero interior rows on a 2x2 grid
                with pytest.raises(HaloExtentError):
                    repro.comm.HaloExchange(padded)
                return True
            finally:
                context.set_current(None)

        results, _, _ = run_spmd(work, 4)
        assert all(results)


class TestCoalescing:
    def test_envelope_roundtrip(self):
        from repro.distributed.commopt.runtime import (coalesce_recv,
                                                       coalesce_send)

        shapes = [(3,), (2, 2), (1, 4)]
        payloads = [np.arange(3.0), np.arange(4.0).reshape(2, 2),
                    np.arange(4.0, 8.0).reshape(1, 4)]

        def work(comm):
            if comm.rank == 0:
                req = coalesce_send(comm, 1, tag=42, payloads=payloads)
                req.wait()
                return True
            got = coalesce_recv(comm, 0, tag=42, shapes=shapes,
                                dtype=np.float64)
            return all(np.array_equal(a, b) for a, b in zip(got, payloads,
                                                            strict=True))

        results, _, stats = run_spmd(work, 2)
        assert all(results)
        assert stats["messages"] == 1   # three payloads, one envelope


class TestCommReport:
    def test_schema_and_roundtrip(self):
        _, result = run_kernel("pgemv", RANKS, optimize=True)
        report = result.comm_report
        doc = report.to_dict()
        assert doc["schema"] == SCHEMA
        clone = CommReport.from_dict(doc)
        assert clone.to_dict() == doc
        assert clone.total_bytes == report.total_bytes
        assert "BlockScatter" in report.ops or "PanelBcast" in report.ops

    def test_eager_report_predicts_overlap_benefit(self):
        with Config.override(commopt__stencil_gflops=1e-4):
            _, eres, _, ores = _run_pair("jacobi")
        # the eager report's prediction is its own halo wait; the optimized
        # run realizes (at least) that much benefit
        assert eres.comm_report.predicted_overlap_s > 0.0
        assert not eres.comm_report.optimized
        assert ores.comm_report.optimized
