"""Tests for the comparator frameworks (S15) and the measurement kit (S17)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.daskish import DaskishScheduler, from_array
from repro.baselines.legateish import LegateishRuntime
from repro.perf import (Measurement, bootstrap_ci, geomean, measure_callable,
                        median_ci, speedup_table, scaling_table, summarize)


class TestDaskish:
    def test_elementwise(self):
        data = np.arange(12, dtype=np.float64)
        arr = from_array(data, 4)
        result = ((arr + 1.0) * 2.0).compute()
        assert np.allclose(result, (data + 1) * 2)

    def test_array_array_ops(self):
        a = np.arange(8, dtype=np.float64)
        b = np.ones(8)
        sched = DaskishScheduler()
        da = from_array(a, 4, sched)
        db = from_array(b, 4, sched)
        assert np.allclose((da - db).compute(), a - b)

    def test_chunked_matmul(self):
        rng = np.random.default_rng(0)
        A = rng.random((8, 6))
        B = rng.random((6, 4))
        sched = DaskishScheduler(workers=4)
        result = (from_array(A, (4, 3), sched) @ from_array(B, (3, 2), sched)
                  ).compute()
        assert np.allclose(result, A @ B)

    def test_matvec(self):
        rng = np.random.default_rng(1)
        A = rng.random((6, 9))
        x = rng.random(9)
        sched = DaskishScheduler()
        result = (from_array(A, (3, 9), sched) @ from_array(x, 9, sched)
                  ).compute()
        assert np.allclose(result, A @ x)

    def test_transpose_and_sum(self):
        A = np.arange(6, dtype=np.float64).reshape(2, 3)
        sched = DaskishScheduler()
        arr = from_array(A, (1, 3), sched)
        assert np.allclose(arr.T.compute(), A.T)
        assert np.allclose(arr.sum().compute(), A.sum())

    def test_shift_with_halo(self):
        data = np.arange(8, dtype=np.float64)
        arr = from_array(data, 4)
        fwd = arr.shift(1).compute()
        assert np.allclose(fwd[:-1], data[1:])
        assert fwd[-1] == 0.0
        back = arr.shift(-1).compute()
        assert np.allclose(back[1:], data[:-1])

    def test_scheduler_charges_per_task(self):
        data = np.arange(64, dtype=np.float64)
        few = DaskishScheduler()
        many = DaskishScheduler()
        (from_array(data, 32, few) + 1.0).compute()
        (from_array(data, 4, many) + 1.0).compute()
        assert many.tasks_run > few.tasks_run
        assert many.modeled_time > few.modeled_time

    def test_cross_worker_transfers_counted(self):
        rng = np.random.default_rng(2)
        A, B = rng.random((8, 8)), rng.random((8, 8))
        sched = DaskishScheduler(workers=4)
        (from_array(A, (4, 4), sched) @ from_array(B, (4, 4), sched)).compute()
        assert sched.bytes_moved > 0


class TestLegateish:
    def test_numpy_semantics(self):
        rng = np.random.default_rng(0)
        runtime = LegateishRuntime(nodes=2)
        A = runtime.array(rng.random((6, 6)))
        x = runtime.array(rng.random(6))
        y = (A @ x) + 1.0
        assert np.allclose(y.numpy(), A.data @ x.data + 1)

    def test_per_op_overhead(self):
        runtime = LegateishRuntime()
        a = runtime.array(np.ones(4))
        before = runtime.modeled_time
        _ = a + a
        _ = a * 2.0
        assert runtime.operations == 2
        assert runtime.modeled_time > before

    def test_blas_cheaper_per_flop_than_elementwise(self):
        rng = np.random.default_rng(1)
        data = rng.random((64, 64))
        r1 = LegateishRuntime()
        _ = r1.array(data) @ r1.array(data)
        blas_time_per_flop = r1.modeled_time / (2 * 64 ** 3)
        r2 = LegateishRuntime()
        _ = r2.array(data) + r2.array(data)
        ew_time_per_flop = r2.modeled_time / (64 ** 2)
        assert blas_time_per_flop < ew_time_per_flop

    def test_setitem_getitem(self):
        runtime = LegateishRuntime()
        a = runtime.array(np.zeros(5))
        a[1:3] = 7.0
        assert np.allclose(a.numpy(), [0, 7, 7, 0, 0])


class TestStats:
    def test_median_ci_small_sample(self):
        med, low, high = median_ci([3.0, 1.0, 2.0])
        assert med == 2.0 and low == 1.0 and high == 3.0

    def test_median_ci_order_statistics(self):
        data = list(range(1, 101))
        med, low, high = median_ci(data)
        assert med == pytest.approx(50.5)
        assert low < med < high

    def test_bootstrap_ci_contains_median(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=30)
        med, low, high = bootstrap_ci(samples)
        assert low <= med <= high

    def test_bootstrap_deterministic(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(samples) == bootstrap_ci(samples)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([4.0, 0.0, -1.0]) == pytest.approx(4.0)

    def test_summarize_ci_percent(self):
        m = summarize([1.0] * 10)
        assert m.ci_percent == pytest.approx(0.0)

    def test_measure_callable(self):
        m = measure_callable(lambda: sum(range(1000)), repetitions=5, warmup=1)
        assert m.median > 0
        assert len(m.samples) == 5

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            median_ci([])


class TestReports:
    def test_speedup_table_geomean_row(self):
        rows = {"k1": {"numpy": 2.0, "dace": 1.0},
                "k2": {"numpy": 8.0, "dace": 2.0}}
        text = speedup_table(rows, baseline="numpy")
        assert "geomean" in text
        assert "2.83" in text  # sqrt(2 * 4)

    def test_scaling_table_efficiency(self):
        text = scaling_table({"dace": {1: 1.0, 4: 1.25}})
        assert "80.0%" in text


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1,
                max_size=20))
@settings(max_examples=50)
def test_geomean_bounded_by_min_max(values):
    gm = geomean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=6,
                max_size=40))
@settings(max_examples=50)
def test_median_within_ci(samples):
    med, low, high = median_ci(samples)
    assert low <= med <= high
